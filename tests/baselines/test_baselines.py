"""Tests for TF-IDF features, trees, gradient boosting and the method suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    FastTextBaseline,
    FineTunedGptBaseline,
    GptPromptVariant,
    GradientBoostingClassifier,
    GradientBoostingConfig,
    LabelEncoder,
    RegressionTree,
    TfidfConfig,
    TfidfVectorizer,
    default_method_suite,
)

DOCS = [
    "socket exhaustion winsock udp transport proxy",
    "socket count exceeded proxy connect failure winsock",
    "disk full ioexception no space diagnostics write",
    "disk usage high ioexception crash worker space",
    "certificate thumbprint mismatch token request failed",
    "certificate rotation override misconfiguration token outage",
]
LABELS = ["socket", "socket", "disk", "disk", "cert", "cert"]


class TestTfidf:
    def test_fit_transform_shape_and_norm(self):
        vectorizer = TfidfVectorizer(TfidfConfig(min_df=1))
        matrix = vectorizer.fit_transform(DOCS)
        assert matrix.shape[0] == len(DOCS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.all((norms > 0.99) & (norms < 1.01))

    def test_min_df_filters_rare_terms(self):
        vectorizer = TfidfVectorizer(TfidfConfig(min_df=2))
        vectorizer.fit(DOCS)
        assert "winsock" in vectorizer.vocabulary
        assert "rotation" not in vectorizer.vocabulary

    def test_max_features_cap(self):
        vectorizer = TfidfVectorizer(TfidfConfig(min_df=1, max_features=5))
        vectorizer.fit(DOCS)
        assert vectorizer.num_features <= 5

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(DOCS)

    def test_unknown_tokens_give_zero_row(self):
        vectorizer = TfidfVectorizer(TfidfConfig(min_df=1))
        vectorizer.fit(DOCS)
        row = vectorizer.transform(["zzz qqq www"])
        assert np.allclose(row, 0.0)


class TestLabelEncoder:
    def test_round_trip(self):
        encoder = LabelEncoder().fit(["b", "a", "b"])
        assert encoder.classes == ["a", "b"]
        ids = encoder.encode(["a", "b", "missing"])
        assert list(ids) == [0, 1, -1]
        assert encoder.decode(ids) == ["a", "b", "<unknown>"]


class TestRegressionTree:
    def test_fits_simple_split(self):
        features = np.array([[0.0], [0.1], [0.9], [1.0]])
        targets = np.array([0.0, 0.0, 1.0, 1.0])
        tree = RegressionTree(max_depth=2, min_samples_leaf=1).fit(features, targets)
        predictions = tree.predict(features)
        assert predictions[0] < 0.5 < predictions[-1]
        assert tree.depth() >= 1

    def test_constant_target_yields_leaf(self):
        features = np.array([[0.0], [1.0]])
        targets = np.array([3.0, 3.0])
        tree = RegressionTree().fit(features, targets)
        assert tree.depth() == 0
        assert np.allclose(tree.predict(features), 3.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    @given(
        st.lists(st.floats(min_value=0, max_value=1), min_size=6, max_size=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_predictions_within_target_range(self, values):
        features = np.array([[v] for v in values])
        targets = np.array(values)
        tree = RegressionTree(max_depth=3, min_samples_leaf=1).fit(features, targets)
        predictions = tree.predict(features)
        assert predictions.min() >= targets.min() - 1e-9
        assert predictions.max() <= targets.max() + 1e-9


class TestGradientBoosting:
    def test_learns_separable_classes(self):
        clf = GradientBoostingClassifier(
            GradientBoostingConfig(n_rounds=6, max_features=50, min_class_count=1)
        )
        clf.fit(DOCS, LABELS)
        assert clf.predict(["winsock socket proxy exhaustion"]) == ["socket"]
        assert clf.predict(["disk ioexception space"]) == ["disk"]
        probabilities = clf.predict_proba(DOCS)
        assert probabilities.shape == (len(DOCS), 3)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_validation_errors(self):
        clf = GradientBoostingClassifier()
        with pytest.raises(ValueError):
            clf.fit([], [])
        with pytest.raises(ValueError):
            clf.fit(["a"], ["x", "y"])
        with pytest.raises(RuntimeError):
            clf.predict_proba(["a"])

    def test_rare_classes_skipped_but_predictable_from_prior(self):
        docs = DOCS + ["totally unique singleton incident text"]
        labels = LABELS + ["rare"]
        clf = GradientBoostingClassifier(
            GradientBoostingConfig(n_rounds=3, max_features=50, min_class_count=2)
        )
        clf.fit(docs, labels)
        assert "rare" in clf.classes  # class exists even without trees

    def test_feature_importances(self):
        clf = GradientBoostingClassifier(
            GradientBoostingConfig(n_rounds=4, max_features=50, min_class_count=1)
        )
        clf.fit(DOCS, LABELS)
        importances = clf.feature_importances(top=5)
        assert importances and all(isinstance(v, int) for v in importances.values())


class TestMethodSuite:
    def test_default_suite_names_match_table2(self):
        names = [m.name for m in default_method_suite()]
        assert names == [
            "FastText",
            "XGBoost",
            "Fine-tune GPT",
            "GPT-4 Prompt",
            "GPT-4 Embed.",
            "RCACopilot (GPT-3.5)",
            "RCACopilot (GPT-4)",
        ]

    def test_simple_baselines_fit_and_predict(self, tiny_corpus):
        train, test = tiny_corpus.chronological_split(0.75)
        for method in (FastTextBaseline(), FineTunedGptBaseline(), GptPromptVariant()):
            method.fit(train)
            label = method.predict(test.all()[0])
            assert isinstance(label, str) and label
