"""Shared builders for the record/replay bus test suites.

The replay determinism suites compare full runs value-for-value, so every
ingredient here is deterministic by construction: the copilot embeds a
seeded synthetic history over an empty telemetry hub (handler queries
return the same — empty — sections on every run), the ingest config pins a
static pool, and :func:`replay_digest` folds everything observable about a
replay (rendered reports, predicted labels, failures, ingest counters,
post-feedback index state) into one sha256 the golden-traffic suite can
check in as a fixture.

Import with a plain ``import bustest_utils`` — pytest puts each test
file's directory on ``sys.path``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Tuple

from repro.bus import BusReplayer, Recording, ReplayResult
from repro.core import (
    CollectionConfig,
    IndexConfig,
    IngestConfig,
    PipelineConfig,
    RCACopilot,
    VirtualClock,
)
from repro.core.clock import Clock
from repro.datagen import generate_corpus
from repro.llm import SimulatedLLM
from repro.telemetry import TelemetryHub

#: The golden suites' historical corpus (a pure function of this spec).
HISTORY_SPEC = {
    "total_incidents": 60,
    "total_categories": 14,
    "seed": 5,
    "duration_days": 90.0,
}


def build_replay_copilot(clock: Optional[Clock] = None) -> RCACopilot:
    """A deterministic indexed copilot over the default handler registry.

    The hub is empty on purpose: handler queries over it are trivially
    deterministic, and the recorded corpora carry everything the replay
    needs in the alerts themselves.
    """
    config = PipelineConfig(
        collection=CollectionConfig(strict=False),
        index=IndexConfig(backend="flat", window_days=20.0),
    )
    copilot = RCACopilot(
        TelemetryHub(), model=SimulatedLLM(), config=config, clock=clock
    )
    copilot.index_history(generate_corpus(**HISTORY_SPEC))
    return copilot


def replay_ingest_config(
    max_batch: int = 8,
    max_latency: float = 120.0,
    collect_workers: Optional[int] = None,
    pipeline_depth: int = 1,
    predict_chunk_size: Optional[int] = None,
) -> IngestConfig:
    """The replay suites' ingest config: static pool, generous queue."""
    return IngestConfig(
        max_batch=max_batch,
        max_latency_seconds=max_latency,
        collect_workers=collect_workers,
        pipeline_depth=pipeline_depth,
        predict_chunk_size=predict_chunk_size,
    )


def build_cheap_copilot(clock: Optional[Clock] = None) -> RCACopilot:
    """A collection-only copilot (no handlers, no index) for cheap tests."""
    from repro.handlers import HandlerRegistry

    return RCACopilot(
        TelemetryHub(),
        registry=HandlerRegistry(),
        model=SimulatedLLM(),
        config=PipelineConfig(collection=CollectionConfig(strict=False)),
        clock=clock,
    )


def make_bus_alert(index: int, alert_type: str = "DiskSpaceLow"):
    """A deterministic Table-1-typed alert for record/replay round trips."""
    from repro.monitors import Alert, AlertScope

    return Alert(
        alert_id=f"AL-RR-{index:05d}",
        alert_type=alert_type,
        scope=AlertScope.FOREST,
        timestamp=7200.0 + 13.0 * index,
        machine="",
        forest="forest-01",
        message=f"bus round-trip alert {index}",
        severity=3,
        attributes={"seq": str(index)},
    )


def run_replay(
    recording: Recording,
    speed: float,
    config: Optional[IngestConfig] = None,
    clock: Optional[Clock] = None,
    copilot: Optional[RCACopilot] = None,
) -> Tuple[ReplayResult, RCACopilot]:
    """One full replay through a fresh copilot; returns (result, copilot)."""
    clock = clock if clock is not None else VirtualClock()
    if copilot is None:
        copilot = build_replay_copilot(clock=clock)
    ingestor = copilot.stream(
        config if config is not None else replay_ingest_config(), clock=clock
    )
    try:
        result = BusReplayer(recording, speed=speed).replay(ingestor)
    finally:
        ingestor.stop()
    return result, copilot


def replay_digest(result: ReplayResult, copilot: RCACopilot) -> str:
    """One sha256 over everything observable about a replay.

    Rendered reports and predicted labels pin the diagnosis content,
    failures pin crash containment, the stats snapshot pins the batching
    re-enactment, and the index state pins the feedback effects — if any
    of them moves across speeds (or across library changes), the digest
    moves.
    """
    stats = result.stats
    payload = {
        "renders": [report.render() for report in result.reports],
        "labels": [report.predicted_label for report in result.reports],
        "failures": {
            str(position): [type(exc).__name__, str(exc)]
            for position, exc in sorted(result.failures.items())
        },
        "stats": stats.as_dict() if stats is not None else None,
        "feedbacks": result.feedbacks,
        "index_size": len(copilot.prediction.vector_store),
        "index_categories": sorted(copilot.prediction.vector_store.categories()),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def replay_labels(result: ReplayResult) -> list:
    """The predicted labels in submission order (golden fixture field)."""
    return [report.predicted_label for report in result.reports]
