"""Golden-traffic regression suite over the checked-in benchmark corpora.

Replays each corpus at 1000x under a :class:`VirtualClock` through the
deterministic replay copilot and compares the full replay digest (rendered
reports + labels + failures + ingest counters + post-feedback index state)
and the per-alert label sequence against checked-in golden fixtures — the
CI tripwire for any behaviour change anywhere in the collect → retrieve →
predict → feedback path.

Also locks the corpora themselves: each generator is a pure function of
its seed, so regenerating a corpus must reproduce the checked-in JSONL
byte for byte.

Regenerating after an *intentional* behaviour change::

    PYTHONPATH=src python -m repro.bus.corpora          # the corpora
    PYTHONPATH=src python tests/bus/test_golden_traffic.py --regen   # goldens
"""

from __future__ import annotations

import json
import os

import pytest

import bustest_utils as btu
from repro.bus.corpora import GENERATORS, corpus_path, load_corpus

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

#: The replay the goldens pin: 1000x, serial pool, the suite's config.
GOLDEN_SPEED = 1000.0

CORPORA = sorted(GENERATORS)


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def compute_golden(name: str) -> dict:
    recording = load_corpus(name)
    result, copilot = btu.run_replay(recording, GOLDEN_SPEED)
    return {
        "corpus": name,
        "speed": GOLDEN_SPEED,
        "alerts": len(recording.alerts),
        "feedbacks": len(recording.feedbacks),
        "reports": len(result.reports),
        "failures": len(result.failures),
        "labels": btu.replay_labels(result),
        "stats": result.stats.as_dict(),
        "digest": btu.replay_digest(result, copilot),
    }


@pytest.mark.parametrize("name", CORPORA)
def test_corpus_regenerates_byte_identically(name):
    """Each corpus is a pure function of its seed: regen == checked-in."""
    with open(corpus_path(name), "r", encoding="utf-8") as handle:
        checked_in = handle.read()
    assert GENERATORS[name]().dumps() == checked_in


@pytest.mark.parametrize("name", CORPORA)
def test_corpus_is_well_formed(name):
    recording = load_corpus(name)
    assert recording.meta["name"] == name
    assert recording.meta["alerts"] == len(recording.alerts)
    assert recording.meta["feedbacks"] == len(recording.feedbacks)
    offsets = [event.offset for event in recording.events]
    assert offsets == sorted(offsets)
    assert recording.duration_seconds > 0.0


@pytest.mark.parametrize("name", CORPORA)
def test_replay_matches_golden(name):
    """The tier-1 replay smoke: 1000x replay reproduces the golden run."""
    with open(golden_path(name), "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    current = compute_golden(name)
    assert current["labels"] == golden["labels"]
    assert current["stats"] == golden["stats"]
    assert current == golden


def regenerate() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in CORPORA:
        payload = compute_golden(name)
        with open(golden_path(name), "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"{golden_path(name)}: {payload['reports']} reports, digest {payload['digest'][:12]}…")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
