"""Round-trip and format tests for the recording JSONL codec."""

from __future__ import annotations

import pytest

from repro.bus import (
    FORMAT_VERSION,
    AlertEvent,
    FeedbackEvent,
    Recording,
    build_recording,
    event_from_record,
    incident_from_dict,
    incident_to_dict,
)
from repro.incidents import Incident, Severity
from repro.monitors import Alert, AlertScope


def make_alert(index: int = 0, **overrides) -> Alert:
    fields = dict(
        alert_id=f"AL-BUS-{index:05d}",
        alert_type="HighCPU",
        scope=AlertScope.MACHINE,
        timestamp=1000.0 + index,
        machine="EXCH-03",
        forest="forest-02",
        message=f"cpu pegged on probe {index}",
        severity=2,
        attributes={"probe": str(index), "region": "emea"},
    )
    fields.update(overrides)
    return Alert(**fields)


class TestAlertRoundTrip:
    def test_to_dict_carries_every_field(self):
        alert = make_alert(7)
        payload = alert.to_dict()
        assert payload["alert_id"] == "AL-BUS-00007"
        assert payload["scope"] == "machine"  # enum flattened to its value
        assert payload["severity"] == 2
        assert payload["attributes"] == {"probe": "7", "region": "emea"}

    def test_round_trip_is_lossless(self):
        alert = make_alert(3, scope=AlertScope.FOREST, severity=5)
        clone = Alert.from_dict(alert.to_dict())
        assert clone == alert
        assert clone.scope is AlertScope.FOREST
        assert clone.attributes == alert.attributes

    def test_from_dict_defaults_optional_fields(self):
        minimal = {
            "alert_id": "AL-MIN",
            "alert_type": "HighCPU",
            "scope": "forest",
            "timestamp": 1.0,
            "machine": "",
            "forest": "f",
            "message": "m",
        }
        alert = Alert.from_dict(minimal)
        assert alert.severity == 3
        assert alert.attributes == {}

    def test_to_dict_snapshots_attributes(self):
        """Mutating the source alert after to_dict must not alias the dict."""
        alert = make_alert(1)
        payload = alert.to_dict()
        alert.attributes["probe"] = "mutated"
        assert payload["attributes"]["probe"] == "1"


class TestIncidentRoundTrip:
    def test_round_trip_is_lossless(self):
        incident = Incident.from_alert("OCE-00001", make_alert(4))
        incident.diagnostic.add("probe", "cpu 99%", source="metrics")
        incident.summary = "cpu saturation on EXCH-03"
        incident.action_output["probe"] = "ran"
        incident.category = "NoisyNeighbour"
        incident.predicted_category = "NoisyNeighbour"
        incident.explanation = "matches incident OCE-00000"
        clone = incident_from_dict(incident_to_dict(incident))
        assert incident_to_dict(clone) == incident_to_dict(incident)
        assert clone.severity is Severity(incident.severity)
        assert clone.scope is incident.scope
        assert [s.title for s in clone.diagnostic.sections] == ["probe"]

    def test_unlabelled_incident_round_trips_none_category(self):
        incident = Incident.from_alert("OCE-00002", make_alert(5))
        clone = incident_from_dict(incident_to_dict(incident))
        assert clone.category is None
        assert clone.predicted_category is None


class TestRecordingFormat:
    def build(self) -> Recording:
        events = [
            AlertEvent(offset=0.0, alert=make_alert(0)),
            FeedbackEvent(
                offset=30.5,
                incident=Incident.from_alert("OCE-00001", make_alert(0)),
                category="NoisyNeighbour",
            ),
            AlertEvent(offset=12.25, alert=make_alert(1)),
        ]
        return build_recording(events, meta={"name": "unit"})

    def test_dumps_loads_is_byte_identical(self):
        recording = self.build()
        text = recording.dumps()
        assert Recording.loads(text).dumps() == text

    def test_build_recording_sorts_and_counts(self):
        recording = self.build()
        assert [event.offset for event in recording.events] == [0.0, 12.25, 30.5]
        assert recording.meta["alerts"] == 2
        assert recording.meta["feedbacks"] == 1
        assert recording.duration_seconds == 30.5
        assert len(recording.alerts) == 2
        assert len(recording.feedbacks) == 1

    def test_same_offset_preserves_submission_order(self):
        """The stable sort keeps same-instant events in capture order."""
        events = [
            AlertEvent(offset=5.0, alert=make_alert(10)),
            AlertEvent(offset=5.0, alert=make_alert(11)),
            AlertEvent(offset=5.0, alert=make_alert(12)),
        ]
        recording = build_recording(events)
        ids = [event.alert.alert_id for event in recording.alerts]
        assert ids == ["AL-BUS-00010", "AL-BUS-00011", "AL-BUS-00012"]
        reloaded = Recording.loads(recording.dumps())
        assert [e.alert.alert_id for e in reloaded.alerts] == ids

    def test_save_load_round_trip(self, tmp_path):
        recording = self.build()
        path = tmp_path / "unit.jsonl"
        recording.save(str(path))
        assert Recording.load(str(path)).dumps() == recording.dumps()

    def test_header_is_first_line_with_version(self):
        import json

        first = json.loads(self.build().dumps().splitlines()[0])
        assert first == {"kind": "header", "version": FORMAT_VERSION, "meta": {"name": "unit", "alerts": 2, "feedbacks": 1}}

    def test_missing_header_is_rejected(self):
        body = self.build().dumps().splitlines()[1:]
        with pytest.raises(ValueError, match="no header"):
            Recording.loads("\n".join(body))

    def test_wrong_version_is_rejected(self):
        text = self.build().dumps().replace(
            f'"version":{FORMAT_VERSION}', f'"version":{FORMAT_VERSION + 1}'
        )
        with pytest.raises(ValueError, match="unsupported recording version"):
            Recording.loads(text)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown recording record kind"):
            event_from_record({"kind": "mystery", "offset": 0.0})

    def test_invalid_json_line_is_reported_with_line_number(self):
        text = self.build().dumps() + "{not json\n"
        with pytest.raises(ValueError, match="line 5 is not valid JSON"):
            Recording.loads(text)
