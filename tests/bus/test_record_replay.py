"""Record → replay determinism suite for the alert bus.

The central invariant under test: replaying the same recording at *any*
speed multiplier, under any static pool shape, yields bit-identical
reports, feedback effects (index state), and :class:`IngestStats` — the
replayer's batching decisions run on the recorded timeline while only the
pacing scales, so nothing observable may move with speed.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import bustest_utils as btu
from repro.bus import (
    AlertEvent,
    BusReplayer,
    FeedbackEvent,
    Recording,
    TrafficRecorder,
    build_recording,
)
from repro.bus.corpora import generate_diurnal_recording
from repro.core import IngestConfig, VirtualClock
from repro.core.errors import IngestQueueFull
from repro.incidents import Incident


@pytest.fixture(scope="module")
def base_copilot():
    """One expensive indexed copilot; every run deep-copies it."""
    return btu.build_replay_copilot()


@pytest.fixture(scope="module")
def small_recording() -> Recording:
    """A short (~1.5h) diurnal recording, regenerated from its seed."""
    return generate_diurnal_recording(hours=1.5, slot_seconds=600.0, seed=17)


@pytest.fixture(scope="module")
def baseline_digest(base_copilot, small_recording) -> str:
    """The 1000x serial-pool digest every other shape must reproduce."""
    result, copilot = replay_with_base(base_copilot, small_recording, 1000.0)
    return btu.replay_digest(result, copilot)


def replay_with_base(base, recording, speed, config=None):
    clock = VirtualClock()
    copilot = copy.deepcopy(base)
    result, _ = btu.run_replay(
        recording, speed, config=config, clock=clock, copilot=copilot
    )
    return result, copilot


class TestTrafficRecorder:
    def test_offsets_are_seconds_since_first_event(self):
        clock = VirtualClock(start=500.0)
        copilot = btu.build_cheap_copilot(clock=clock)
        ingestor = copilot.stream(
            IngestConfig(max_batch=64, max_latency_seconds=300.0), clock=clock
        )
        recorder = TrafficRecorder(ingestor, meta={"site": "unit"})
        try:
            recorder.submit(btu.make_bus_alert(0))
            clock.advance(30.0)
            recorder.submit(btu.make_bus_alert(1))
            clock.advance(12.5)
            recorder.submit_many([btu.make_bus_alert(2), btu.make_bus_alert(3)])
            recorder.flush()
        finally:
            recorder.stop()
        events = recorder.events
        assert [event.offset for event in events] == [0.0, 30.0, 42.5, 42.5]
        assert [event.alert.alert_id for event in events] == [
            "AL-RR-00000",
            "AL-RR-00001",
            "AL-RR-00002",
            "AL-RR-00003",
        ]
        recording = recorder.recording(meta={"extra": 1})
        assert recording.meta["site"] == "unit"
        assert recording.meta["extra"] == 1
        assert recording.meta["alerts"] == 4

    def test_passthrough_preserves_ingestor_behaviour(self):
        copilot = btu.build_cheap_copilot()
        ingestor = copilot.stream(IngestConfig(max_batch=8, max_latency_seconds=0.01))
        with TrafficRecorder(ingestor) as recorder:
            future = recorder.submit(btu.make_bus_alert(0))
            assert future.result(timeout=30.0).incident.incident_id
            assert recorder.stats().submitted == 1
            assert recorder.queue_depth == 0
        # __exit__ stopped the underlying ingestor's worker.
        assert ingestor._worker is None or not ingestor._worker.is_alive()

    def test_load_shed_burst_records_only_the_enqueued_prefix(self):
        """On IngestQueueFull the recording carries the accepted prefix only."""
        copilot = btu.build_cheap_copilot()
        ingestor = copilot.stream(
            IngestConfig(
                max_batch=64,
                max_latency_seconds=300.0,
                queue_capacity=2,
                block_when_full=False,
            )
        )
        recorder = TrafficRecorder(ingestor)
        try:
            alerts = [btu.make_bus_alert(i) for i in range(5)]
            with pytest.raises(IngestQueueFull) as excinfo:
                recorder.submit_many(alerts)
            # The exception carries the enqueued prefix's futures...
            assert len(excinfo.value.enqueued) == 2
            # ...and the recording captured exactly that prefix.
            assert [e.alert.alert_id for e in recorder.events] == [
                "AL-RR-00000",
                "AL-RR-00001",
            ]
            recorder.flush()
            for future in excinfo.value.enqueued:
                assert future.result(timeout=30.0).incident.incident_id
        finally:
            recorder.stop()

    def test_load_shed_scalar_submit_records_nothing(self):
        copilot = btu.build_cheap_copilot()
        ingestor = copilot.stream(
            IngestConfig(
                max_batch=64,
                max_latency_seconds=300.0,
                queue_capacity=1,
                block_when_full=False,
            )
        )
        recorder = TrafficRecorder(ingestor)
        try:
            recorder.submit(btu.make_bus_alert(0))
            with pytest.raises(IngestQueueFull):
                recorder.submit(btu.make_bus_alert(1))
            assert len(recorder.events) == 1
            recorder.flush()
        finally:
            recorder.stop()


class TestLiveRecordReplayParity:
    def test_replay_reproduces_the_live_run(self, base_copilot):
        """Record a manually driven live session, replay it: same everything.

        The live driver follows the worker's own policy (size flush at
        ``max_batch``, latency flush when the window expires), so the
        replayer's re-enactment must land every alert in the same batch —
        making reports, stats, feedback effects, and index state equal.
        """
        config = btu.replay_ingest_config(max_batch=4, max_latency=120.0)
        clock = VirtualClock()
        live_copilot = copy.deepcopy(base_copilot)
        ingestor = live_copilot.stream(config, clock=clock)
        recorder = TrafficRecorder(ingestor)
        live_futures = []
        try:
            # Wave 1: exactly max_batch alerts -> one "size" flush.
            for index in range(4):
                live_futures.append(recorder.submit(btu.make_bus_alert(index)))
                clock.advance(5.0)
            ingestor.flush(reason="size")
            # OCE feedback on the first resolved incident, mid-stream.
            incident = live_futures[0].result(timeout=30.0).incident
            recorder.record_feedback(incident, "FullDisk")
            # Wave 2: three stragglers, flushed by the latency deadline.
            clock.advance(40.0)
            for index in range(4, 7):
                live_futures.append(
                    recorder.submit(
                        btu.make_bus_alert(index, alert_type="PriorityQueueDelay")
                    )
                )
                clock.advance(1.0)
            clock.advance(120.0)
            ingestor.flush(reason="latency")
            live_reports = [f.result(timeout=30.0) for f in live_futures]
            live_stats = ingestor.stats()
        finally:
            recorder.stop()

        recording = recorder.recording()
        assert Recording.loads(recording.dumps()).dumps() == recording.dumps()
        result, replay_copilot = replay_with_base(
            base_copilot, recording, speed=250.0, config=config
        )
        assert not result.failures
        assert [r.render() for r in result.reports] == [
            r.render() for r in live_reports
        ]
        assert [r.predicted_label for r in result.reports] == [
            r.predicted_label for r in live_reports
        ]
        assert result.feedbacks == 1
        assert result.stats.as_dict() == live_stats.as_dict()
        assert len(replay_copilot.prediction.vector_store) == len(
            live_copilot.prediction.vector_store
        )


class TestReplayDeterminism:
    def test_bit_identical_across_speeds(self, base_copilot, small_recording):
        """1x vs 1000x under a virtual clock: every observable is equal."""
        slow, slow_copilot = replay_with_base(base_copilot, small_recording, 1.0)
        fast, fast_copilot = replay_with_base(base_copilot, small_recording, 1000.0)
        assert btu.replay_digest(slow, slow_copilot) == btu.replay_digest(
            fast, fast_copilot
        )
        assert len(slow.reports) == len(small_recording.alerts)
        assert not slow.failures
        assert slow.stats.as_dict() == fast.stats.as_dict()
        assert sum(slow.stats.flush_reasons.values()) == slow.stats.batches
        # Pacing scales exactly: the virtual clock advanced 1000x less.
        assert fast.replay_seconds == pytest.approx(
            slow.replay_seconds / 1000.0, rel=1e-9
        )

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        speed=st.sampled_from([3.0, 50.0, 1000.0, 86400.0]),
        workers=st.sampled_from([None, 2, 4]),
        shape=st.sampled_from([(1, None), (2, 2)]),
    )
    def test_locked_across_speeds_and_pool_shapes(
        self, base_copilot, small_recording, baseline_digest, speed, workers, shape
    ):
        """Hypothesis lock: digest(speed, pool, pipeline) == digest(1000x, serial)."""
        depth, chunk = shape
        expected = baseline_digest
        config = btu.replay_ingest_config(
            collect_workers=workers, pipeline_depth=depth, predict_chunk_size=chunk
        )
        run, run_copilot = replay_with_base(
            base_copilot, small_recording, speed, config=config
        )
        assert btu.replay_digest(run, run_copilot) == expected


class TestFlushReenactment:
    def build_synthetic(self) -> Recording:
        """Alerts at 0/1/2 (a size flush at max_batch=3), a feedback at 50,
        then alerts at 100/105 whose latency window (L=10) expires at 110."""
        incident = Incident.from_alert("OCE-SYN-1", btu.make_bus_alert(0))
        events = [
            AlertEvent(offset=0.0, alert=btu.make_bus_alert(0)),
            AlertEvent(offset=1.0, alert=btu.make_bus_alert(1)),
            AlertEvent(offset=2.0, alert=btu.make_bus_alert(2)),
            FeedbackEvent(offset=50.0, incident=incident, category="FullDisk"),
            AlertEvent(offset=100.0, alert=btu.make_bus_alert(3)),
            AlertEvent(offset=105.0, alert=btu.make_bus_alert(4)),
        ]
        return build_recording(events, meta={"name": "synthetic"})

    def test_flush_reasons_match_the_worker_policy(self, base_copilot):
        recording = self.build_synthetic()
        config = btu.replay_ingest_config(max_batch=3, max_latency=10.0)
        result, _ = replay_with_base(base_copilot, recording, 1.0, config=config)
        stats = result.stats
        assert stats.batches == 2
        assert stats.flush_reasons == {"size": 1, "latency": 1, "manual": 0}
        assert stats.processed == stats.submitted == 5
        assert stats.last_flush_size == 2
        assert result.feedbacks == 1
        # The tail latency flush fires at window_start + L = 110 on the
        # recorded timeline, so at speed 1 the replay clock spans exactly that.
        assert result.replay_seconds == pytest.approx(110.0)

    def test_event_on_the_latency_deadline_starts_the_next_batch(self, base_copilot):
        """An alert landing exactly at window_start + L goes to batch 2 —
        mirroring the worker, whose timed wait sees remaining <= 0 and
        flushes before taking it."""
        events = [
            AlertEvent(offset=0.0, alert=btu.make_bus_alert(0)),
            AlertEvent(offset=10.0, alert=btu.make_bus_alert(1)),
        ]
        recording = build_recording(events)
        config = btu.replay_ingest_config(max_batch=64, max_latency=10.0)
        result, _ = replay_with_base(base_copilot, recording, 1.0, config=config)
        stats = result.stats
        assert stats.batches == 2
        assert stats.flush_reasons == {"size": 0, "latency": 2, "manual": 0}
        assert stats.last_flush_size == 1

    def test_real_clock_replay_matches_virtual(self, base_copilot):
        """On the real (monotonic) clock at high speed the same recording
        produces the same reports and counters — pacing sleeps instead of
        advancing, batching is unchanged."""
        recording = self.build_synthetic()
        config = btu.replay_ingest_config(max_batch=3, max_latency=10.0)
        virtual, virtual_copilot = replay_with_base(
            base_copilot, recording, 1.0, config=config
        )
        from repro.core.clock import MonotonicClock

        real_copilot = copy.deepcopy(base_copilot)
        real, real_copilot = btu.run_replay(
            recording,
            speed=100000.0,
            config=config,
            clock=MonotonicClock(),
            copilot=real_copilot,
        )
        assert btu.replay_digest(real, real_copilot) == btu.replay_digest(
            virtual, virtual_copilot
        )
        # 110 recorded seconds at 100000x is ~1ms of real pacing.
        assert real.replay_seconds < 30.0


class TestReplayerGuards:
    def test_refuses_a_running_background_worker(self, small_recording):
        copilot = btu.build_cheap_copilot()
        ingestor = copilot.stream(
            IngestConfig(max_batch=8, max_latency_seconds=0.01)
        ).start()
        try:
            with pytest.raises(ValueError, match="manually driven"):
                BusReplayer(small_recording).replay(ingestor)
        finally:
            ingestor.stop()

    @pytest.mark.parametrize("speed", [0.0, -1.0])
    def test_rejects_non_positive_speed(self, small_recording, speed):
        with pytest.raises(ValueError, match="speed multiplier"):
            BusReplayer(small_recording, speed=speed)
