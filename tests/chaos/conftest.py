"""Fixtures for the chaos suite.

The suite reuses the deterministic streaming harness (FakeClock, stream
registry, alert builders) from ``tests/core/streamtest_utils.py``; pytest
only puts each test file's own directory on ``sys.path``, so the sibling
directory is inserted here.

Every randomized chaos test derives its RNG seed from the ``chaos_seed``
fixture, which reads ``CHAOS_SEED`` (default 0) and prints it — the CI
chaos-soak job logs the value so any failure reproduces with
``CHAOS_SEED=<seed> pytest tests/chaos``.
"""

from __future__ import annotations

import os
import sys

import pytest

_TESTS_CORE = os.path.join(os.path.dirname(__file__), "..", "core")
if _TESTS_CORE not in sys.path:
    sys.path.insert(0, os.path.abspath(_TESTS_CORE))


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    seed = int(os.environ.get("CHAOS_SEED", "0"))
    print(f"\n[chaos] RNG seed: {seed} (override with CHAOS_SEED=<int>)")
    return seed
