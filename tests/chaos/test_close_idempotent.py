"""Satellite: idempotent, exception-safe teardown across the stack.

``stop()``/``close()`` may be called twice, out of order, or after a
component already crashed — teardown must still release every executor,
thread and shared-memory segment, exactly once, without raising from the
second call.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
import streamtest_utils as stu

from repro.core.collect_pool import CollectionPool
from repro.vectordb import ShardedVectorIndex


def _ingestor(copilot=None, **config_kwargs):
    copilot = copilot or stu.build_stream_copilot(with_history=False)
    return copilot, copilot.stream(stu.ingest_config(collect_workers=2, **config_kwargs))


class TestStreamIngestorStop:
    def test_stop_twice_is_a_noop(self):
        _, ingestor = _ingestor()
        futures = ingestor.submit_many([stu.make_stream_alert(0)])
        ingestor.stop()
        stats_first = ingestor.stats().as_dict()
        ingestor.stop()
        assert ingestor.stats().as_dict() == stats_first
        assert all(future.done() for future in futures)

    def test_stop_without_start(self):
        _, ingestor = _ingestor()
        ingestor.stop()  # worker never spawned: still drains and tears down

    def test_stop_after_started_worker_twice(self):
        _, ingestor = _ingestor()
        ingestor.start()
        ingestor.submit_many([stu.make_stream_alert(i) for i in range(3)])
        ingestor.stop()
        ingestor.stop()
        assert ingestor.stats().processed == 3

    def test_stop_is_exception_safe_when_pool_close_raises(self, monkeypatch):
        """A crashing pool teardown poisons one stop(), never the next."""
        _, ingestor = _ingestor()
        ingestor.submit_many([stu.make_stream_alert(0)])
        original_close = ingestor._collect_pool.close
        calls = {"n": 0}

        def exploding_close():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected teardown crash")
            original_close()

        monkeypatch.setattr(ingestor._collect_pool, "close", exploding_close)
        with pytest.raises(RuntimeError, match="injected teardown crash"):
            ingestor.stop()
        ingestor.stop()  # second stop completes the teardown cleanly
        assert calls["n"] == 2

    def test_stop_leaves_no_threads(self):
        before = set(threading.enumerate())
        _, ingestor = _ingestor()
        ingestor.start()
        ingestor.submit_many([stu.make_stream_alert(i) for i in range(4)])
        ingestor.stop()
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread not in before and thread.is_alive()
        ]
        assert leaked == []

    def test_worker_crash_resolves_futures_and_counts_worker_error(
        self, monkeypatch
    ):
        """The _fail_batch containment path: a crash inside the batch
        machinery (before per-alert handling can catch it) resolves every
        future exceptionally instead of stranding them."""
        copilot, ingestor = _ingestor()
        monkeypatch.setattr(
            copilot.collection,
            "next_incident_id",
            lambda: (_ for _ in ()).throw(RuntimeError("id allocator down")),
        )
        futures = ingestor.submit_many([stu.make_stream_alert(i) for i in range(3)])
        ingestor.flush()
        for future in futures:
            with pytest.raises(RuntimeError, match="id allocator down"):
                future.result(timeout=10.0)
        stats = ingestor.stats()
        assert stats.worker_errors == 1
        assert stats.processed == stats.submitted == 3
        # The stream survives: undo the crash and keep ingesting.
        monkeypatch.undo()
        survivors = ingestor.submit_many([stu.make_stream_alert(9)])
        ingestor.stop()
        assert survivors[0].result(timeout=10.0) is not None
        assert ingestor.stats().worker_errors == 1


class TestCollectionPoolClose:
    def test_close_twice(self):
        copilot = stu.build_stream_copilot(with_history=False)
        pool = CollectionPool(copilot.collection, workers=2)
        pool.run([stu.make_stream_alert(0)], ["INC-X-1"])
        pool.close()
        pool.close()

    def test_close_never_run(self):
        copilot = stu.build_stream_copilot(with_history=False)
        pool = CollectionPool(copilot.collection, workers=2)
        pool.close()

    def test_close_joins_retired_executors(self):
        copilot = stu.build_stream_copilot(with_history=False)
        pool = CollectionPool(copilot.collection, workers=2)
        pool.run([stu.make_stream_alert(0)], ["INC-X-1"])
        pool.resize(4)
        pool.run([stu.make_stream_alert(1)], ["INC-X-2"])
        pool.close()
        assert pool._retired == []
        pool.close()


class TestShardedIndexClose:
    def _index(self):
        rng = np.random.default_rng(3)
        index = ShardedVectorIndex(window_days=10.0)
        for position in range(8):
            index.add(
                f"INC-{position}",
                rng.normal(size=4).astype(np.float32),
                float(position),
                "Cat",
            )
        return index

    def test_close_twice(self):
        index = self._index()
        index.close()
        index.close()

    def test_close_after_save_and_load(self, tmp_path):
        index = self._index()
        index.save(str(tmp_path / "idx"))
        index.close()
        loaded = ShardedVectorIndex.load(str(tmp_path / "idx"))
        loaded.close()
        loaded.close()
