"""End-to-end chaos: every future resolves, degradation stays bounded.

The degraded-mode contract of the chaos harness:

* with all faults disabled the chaos wrappers are value-transparent —
  reports, feedback effects and ``IngestStats`` match a bare pipeline;
* under every fault type each submitted future still resolves (with a
  report or with the failure), the worker keeps consuming, and a fault
  only ever takes down its own blast radius (one alert, one batch);
* a 10% LLM fault rate degrades *accuracy* (some alerts route to the
  ``Unknown`` manual-triage category), never *liveness*, and leaves no
  threads behind.
"""

from __future__ import annotations

import threading

import pytest
import streamtest_utils as stu

from repro.chaos import (
    FaultConfig,
    FaultInjector,
    FaultyChatModel,
    ResilientChatModel,
    RetryPolicy,
)
from repro.core.autoscale import AutoscalePolicy, PoolAutoscaler
from repro.core.errors import InjectedFault
from repro.llm import SimulatedLLM


def _alert_mix(count: int):
    types = [stu.SLEEPY_TYPE, stu.FLAKY_TYPE, stu.IDLE_TYPE]
    return [
        stu.make_stream_alert(position, alert_type=types[position % len(types)])
        for position in range(count)
    ]


def _resilient(injector: FaultInjector, **policy_overrides) -> ResilientChatModel:
    policy = RetryPolicy(
        max_attempts=policy_overrides.pop("max_attempts", 2),
        base_delay_seconds=0.0,
        failure_threshold=policy_overrides.pop("failure_threshold", 1000),
        **policy_overrides,
    )
    return ResilientChatModel(
        FaultyChatModel(SimulatedLLM(), injector),
        policy,
        clock=stu.FakeClock(auto_advance=True),
    )


def _run_stream(
    alerts, model=None, injector=None, arm=None, strict=True, **config_kwargs
):
    """Build a copilot, stream the alerts through it, and drain everything.

    ``arm`` is called after the copilot (and its LLM-driven history
    indexing) is built — fault configs added there target the streamed
    alerts only, not the healthy warm-up traffic.
    """
    copilot = stu.build_stream_copilot(strict=strict, model=model)
    if injector is not None:
        copilot.collection._executor.fault_injector = injector
    if arm is not None:
        arm()
    ingestor = copilot.stream(stu.ingest_config(collect_workers=2, **config_kwargs))
    futures = ingestor.submit_many(alerts)
    ingestor.stop()
    reports, failures = stu.drain_futures(futures)
    return copilot, ingestor, reports, failures


def _label(fingerprint):
    return fingerprint[9]  # predicted_label slot of report_fingerprint


class TestParity:
    """Acceptance gate: faults disabled => value-identical to the bare stack."""

    def test_inert_chaos_stack_matches_bare_pipeline(self):
        alerts = _alert_mix(12)
        bare_copilot, bare_ingestor, bare_reports, bare_failures = _run_stream(
            alerts
        )
        chaos_copilot, chaos_ingestor, chaos_reports, chaos_failures = _run_stream(
            alerts, model=_resilient(FaultInjector(seed=0)), injector=FaultInjector(seed=1)
        )
        assert chaos_reports == bare_reports
        assert chaos_failures == bare_failures == {}
        for stats_field in ("submitted", "processed", "batches", "worker_errors"):
            assert getattr(chaos_ingestor.stats(), stats_field) == getattr(
                bare_ingestor.stats(), stats_field
            )
        assert (
            chaos_ingestor.stats().flush_reasons
            == bare_ingestor.stats().flush_reasons
        )

    def test_inert_chaos_stack_matches_bare_feedback_effects(self):
        alerts = _alert_mix(6)
        states = []
        for model in (None, _resilient(FaultInjector(seed=0))):
            copilot = stu.build_stream_copilot(model=model)
            ingestor = copilot.stream(stu.ingest_config(collect_workers=2))
            futures = ingestor.submit_many(alerts)
            ingestor.stop()
            reports = [future.result(timeout=60.0) for future in futures]
            copilot.record_feedback(reports[0].incident, "ConfirmedCategory")
            copilot.record_feedback(reports[1].incident, "AnotherCategory")
            incident_ids = [report.incident.incident_id for report in reports]
            states.append(stu.index_state(copilot, incident_ids))
        assert states[0] == states[1]


class TestFuturesAlwaysResolve:
    def test_handler_faults_shed_only_their_own_futures(self, chaos_seed):
        """Exactly ``max_injections`` alerts fail; every other one succeeds."""
        alerts = _alert_mix(9)
        injector = FaultInjector(seed=chaos_seed).add(
            FaultConfig(site="handler.step", max_injections=2)
        )
        _, ingestor, reports, failures = _run_stream(alerts, injector=injector)
        assert len(failures) == 2
        assert len(reports) == 7
        # Strict collection wraps the injected action failure per-incident.
        assert all(
            name == "CollectionError" and "injected fault" in text
            for name, text in failures.values()
        )
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == 9

    def test_handler_faults_degrade_to_partial_reports_when_lenient(
        self, chaos_seed
    ):
        alerts = _alert_mix(9)
        injector = FaultInjector(seed=chaos_seed).add(
            FaultConfig(site="handler.step", max_injections=2)
        )
        _, _, reports, failures = _run_stream(
            alerts, injector=injector, strict=False
        )
        # Lenient collection swallows the injected action failure: every
        # alert still produces a report (with partial action output).
        assert failures == {}
        assert len(reports) == 9

    def test_unprotected_llm_fault_fails_one_batch_not_the_stream(self):
        """Without the resilient wrapper a batch dies; the stream survives."""
        injector = FaultInjector(seed=0)
        copilot = stu.build_stream_copilot(
            model=FaultyChatModel(SimulatedLLM(), injector)
        )
        # Armed only now: history indexing above ran fault-free.
        injector.add(FaultConfig(site="llm.complete", max_injections=1))
        ingestor = copilot.stream(stu.ingest_config(collect_workers=2))
        first_wave = ingestor.submit_many(_alert_mix(4))
        ingestor.flush()
        second_wave = ingestor.submit_many(_alert_mix(4))
        ingestor.stop()
        _, first_failures = stu.drain_futures(first_wave)
        second_reports, second_failures = stu.drain_futures(second_wave)
        assert len(first_failures) == 4  # the poisoned batch: all resolved
        assert all(
            name == "InjectedFault" for name, _ in first_failures.values()
        )
        assert second_failures == {}  # the worker kept consuming
        assert len(second_reports) == 4
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == 8

    def test_resilient_llm_fault_degrades_without_failing_any_future(self):
        injector = FaultInjector(seed=0)
        alerts = _alert_mix(6)
        model = _resilient(injector, max_attempts=2)
        _, _, reports, failures = _run_stream(
            alerts,
            model=model,
            arm=lambda: injector.add(
                FaultConfig(site="llm.complete", probability=1.0)
            ),
        )
        assert failures == {}
        assert len(reports) == 6
        # Every completion was injected away, so every label degrades to
        # the manual-triage category instead of an exception.
        assert {_label(fp) for fp in reports.values()} == {"Unknown"}
        stats = model.stats_dict()
        assert stats["degraded"] > 0.0

    def test_injected_delay_is_virtual_through_the_model_clock(self):
        clock = stu.FakeClock(auto_advance=True)
        injector = FaultInjector(seed=0, clock=clock)
        model = ResilientChatModel(
            FaultyChatModel(SimulatedLLM(), injector),
            RetryPolicy(max_attempts=2, base_delay_seconds=0.0),
            clock=clock,
        )
        _, _, reports, failures = _run_stream(
            _alert_mix(3),
            model=model,
            arm=lambda: injector.add(
                FaultConfig(site="llm.complete", delay_seconds=45.0, error=None)
            ),
        )
        assert failures == {}
        assert len(reports) == 3
        assert clock.monotonic() >= 45.0  # the slowdown happened — virtually


class TestBoundedDegradation:
    def _degradation_run(self, count: int, seed: int):
        alerts = _alert_mix(count)
        _, _, healthy_reports, healthy_failures = _run_stream(
            alerts, max_batch=8
        )
        assert healthy_failures == {}
        injector = FaultInjector(seed=seed)
        before = set(threading.enumerate())
        chaos_model = _resilient(injector, max_attempts=2)
        _, ingestor, chaos_reports, chaos_failures = _run_stream(
            alerts,
            model=chaos_model,
            max_batch=8,
            arm=lambda: injector.add(
                FaultConfig(site="llm.complete", probability=0.1)
            ),
        )
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread not in before and thread.is_alive()
        ]
        return healthy_reports, chaos_reports, chaos_failures, leaked, ingestor

    def test_ten_percent_llm_faults_bounded_accuracy_zero_lost_futures(
        self, chaos_seed
    ):
        healthy, chaos, failures, leaked, ingestor = self._degradation_run(
            24, chaos_seed
        )
        assert failures == {}  # liveness: no future was lost or failed
        assert len(chaos) == len(healthy) == 24
        degraded = [
            position
            for position in healthy
            if _label(chaos[position]) != _label(healthy[position])
        ]
        # Degradation is bounded: every diverging label is the explicit
        # manual-triage route, and retries keep most of the stream exact.
        assert all(_label(chaos[p]) == "Unknown" for p in degraded)
        assert len(degraded) < 24
        assert leaked == []
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == 24

    @pytest.mark.slow
    def test_soak_heavier_stream_with_mixed_fault_sites(self, chaos_seed):
        """Chaos-soak: larger stream, faults on both boundaries at once."""
        alerts = _alert_mix(96)
        injector = FaultInjector(seed=chaos_seed)
        handler_faults = FaultInjector(seed=chaos_seed + 1).add(
            FaultConfig(site="handler.step", probability=0.05)
        )
        before = set(threading.enumerate())
        model = _resilient(injector, max_attempts=3)
        _, ingestor, reports, failures = _run_stream(
            alerts,
            model=model,
            injector=handler_faults,
            strict=False,
            max_batch=16,
            arm=lambda: injector.add(
                FaultConfig(site="llm.complete", probability=0.1)
            ),
        )
        assert failures == {}  # lenient collection + resilient LLM
        assert len(reports) == 96
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == 96
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread not in before and thread.is_alive()
        ]
        assert leaked == []


class TestAutoscalerDamping:
    """Satellite of the tentpole: rate-damp the pool against latency spikes."""

    def test_spike_clip_ignores_a_lone_injected_spike(self):
        policy = AutoscalePolicy(
            high_utilization=0.6,
            ewma_alpha=0.9,
            hysteresis_batches=1,
            cooldown_seconds=0.0,
            spike_clip=0.1,
        )
        damped = PoolAutoscaler(
            policy, minimum=1, maximum=8, clock=stu.FakeClock()
        )
        undamped = PoolAutoscaler(
            AutoscalePolicy(
                high_utilization=0.6,
                ewma_alpha=0.9,
                hysteresis_batches=1,
                cooldown_seconds=0.0,
            ),
            minimum=1,
            maximum=8,
            clock=stu.FakeClock(),
        )
        for scaler in (damped, undamped):
            for _ in range(4):
                scaler.observe(0.4, queue_depth=0)
        # One injected latency spike saturates utilization for a batch.
        damped.observe(1.0, queue_depth=0)
        undamped.observe(1.0, queue_depth=0)
        assert undamped.size > 1  # the classic EWMA flaps on the spike
        assert damped.size == 1  # the clipped loop holds steady
        assert damped.ewma <= 0.4 + policy.spike_clip + 1e-9

    def test_spike_clip_still_tracks_a_sustained_shift(self):
        policy = AutoscalePolicy(
            high_utilization=0.6,
            ewma_alpha=0.9,
            hysteresis_batches=1,
            cooldown_seconds=0.0,
            spike_clip=0.1,
        )
        scaler = PoolAutoscaler(
            policy, minimum=1, maximum=8, clock=stu.FakeClock()
        )
        scaler.observe(0.3, queue_depth=0)
        for _ in range(8):
            scaler.observe(1.0, queue_depth=0)
        # A genuine load shift walks the clipped EWMA up and still grows.
        assert scaler.ewma > 0.6
        assert scaler.size > 1

    def test_spike_clip_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(spike_clip=0.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(spike_clip=1.5)
