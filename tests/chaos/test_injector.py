"""FaultInjector unit tests: determinism, windows, budgets, telemetry."""

from __future__ import annotations

import pytest
import streamtest_utils as stu

from repro.chaos import FaultConfig, FaultInjector
from repro.core.errors import InjectedFault, LLMUnavailableError, TransientError
from repro.telemetry import TelemetryHub


def _fire_sequence(injector: FaultInjector, site: str, calls: int) -> list:
    """True/False per call: did an error-fault fire?"""
    outcome = []
    for _ in range(calls):
        try:
            injector.fire(site)
        except InjectedFault:
            outcome.append(True)
        else:
            outcome.append(False)
    return outcome


def test_same_seed_same_sequence():
    make = lambda: FaultInjector(seed=42).add(
        FaultConfig(site="llm.complete", probability=0.3)
    )
    first = _fire_sequence(make(), "llm.complete", 50)
    second = _fire_sequence(make(), "llm.complete", 50)
    assert first == second
    assert any(first) and not all(first)


def test_different_seeds_differ():
    a = _fire_sequence(
        FaultInjector(seed=1).add(FaultConfig(site="s", probability=0.5)), "s", 64
    )
    b = _fire_sequence(
        FaultInjector(seed=2).add(FaultConfig(site="s", probability=0.5)), "s", 64
    )
    assert a != b


def test_sites_draw_independent_streams():
    """Adding a second site never shifts the first site's draw sequence."""
    solo = FaultInjector(seed=7).add(FaultConfig(site="a", probability=0.4))
    duo = FaultInjector(seed=7).add(FaultConfig(site="a", probability=0.4)).add(
        FaultConfig(site="b", probability=0.4)
    )
    sequence_solo = []
    sequence_duo = []
    for _ in range(40):
        sequence_solo.append(solo.sample("a") is not None)
        sequence_duo.append(duo.sample("a") is not None)
        duo.sample("b")  # interleaved draws on the other site
    assert sequence_solo == sequence_duo


def test_unconfigured_site_is_inert():
    injector = FaultInjector(seed=0)
    assert injector.fire("anything") is None
    assert injector.stats_dict()["injections_total"] == 0.0


def test_activation_window_on_fake_clock():
    clock = stu.FakeClock(auto_advance=True)
    injector = FaultInjector(seed=0, clock=clock).add(
        FaultConfig(site="s", start_seconds=10.0, duration_seconds=5.0)
    )
    assert injector.sample("s") is None  # before the window
    clock.advance(10.0)
    assert injector.sample("s") is not None  # inside
    clock.advance(5.0)
    assert injector.sample("s") is None  # expired


def test_max_injections_budget():
    injector = FaultInjector(seed=0).add(
        FaultConfig(site="s", max_injections=3, error=None)
    )
    fired = [injector.sample("s") is not None for _ in range(10)]
    assert fired == [True, True, True] + [False] * 7


def test_delay_goes_through_clock_not_real_time():
    clock = stu.FakeClock(auto_advance=True)
    injector = FaultInjector(seed=0, clock=clock).add(
        FaultConfig(site="s", delay_seconds=120.0, error=None)
    )
    event = injector.sample("s")
    assert event is not None and event.delay_seconds == 120.0
    # Virtual time advanced by the full injected delay; the call returned
    # immediately in real time (a real 120s sleep would trip the test
    # timeout long before this assertion).
    assert clock.monotonic() == pytest.approx(120.0)
    assert injector.stats_dict()["delay_seconds_total"] == pytest.approx(120.0)


def test_match_predicate_scopes_faults():
    injector = FaultInjector(seed=0).add(
        FaultConfig(site="handler.step", match=lambda detail: detail == "probe_b")
    )
    assert injector.sample("handler.step", detail="probe_a") is None
    assert injector.sample("handler.step", detail="probe_b") is not None


def test_error_class_and_factory_specs():
    injector = FaultInjector(seed=0).add(
        FaultConfig(site="class", error=LLMUnavailableError)
    ).add(
        FaultConfig(site="factory", error=lambda detail: ValueError(f"bad {detail}"))
    )
    with pytest.raises(LLMUnavailableError):
        injector.fire("class", detail="x")
    with pytest.raises(ValueError, match="bad y"):
        injector.fire("factory", detail="y")
    # The default error type is classified transient, driving retry policy.
    assert issubclass(InjectedFault, TransientError)


def test_telemetry_export_counts_every_injection():
    hub = TelemetryHub()
    injector = FaultInjector(seed=0).add(FaultConfig(site="llm.complete", error=None))
    for _ in range(4):
        injector.sample("llm.complete")
    injector.export(hub)
    assert (
        hub.metrics.latest("rcacopilot.faults.injections_total", "chaos-injector")
        == 4.0
    )
    assert (
        hub.metrics.latest(
            "rcacopilot.faults.injections_llm_complete", "chaos-injector"
        )
        == 4.0
    )


def test_config_validation():
    with pytest.raises(ValueError):
        FaultConfig(site="s", probability=1.5)
    with pytest.raises(ValueError):
        FaultConfig(site="s", delay_seconds=-1.0)
    with pytest.raises(ValueError):
        FaultConfig(site="s", max_injections=0)
