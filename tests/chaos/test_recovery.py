"""Index I/O chaos: corrupt/partial manifests and arenas, fallback ladder."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.chaos import load_index_resilient, load_legacy_shards
from repro.core.errors import IndexCorruptionError, PermanentError
from repro.telemetry import TelemetryHub
from repro.vectordb import ShardedVectorIndex, load_index

DIM = 8


def _build_index(entries: int = 24) -> ShardedVectorIndex:
    rng = np.random.default_rng(5)
    index = ShardedVectorIndex(window_days=10.0)
    for position in range(entries):
        index.add(
            f"INC-{position:04d}",
            rng.normal(size=DIM).astype(np.float32),
            float(position),
            f"Cat{position % 3}",
            text=f"incident {position}",
        )
    return index


def _neighbor_ids(index, query_day: float = 30.0):
    query = np.ones(DIM, dtype=np.float32)
    return [n.incident_id for n in index.search(query, query_day, k=5)]


def test_corrupt_manifest_raises_typed_error(tmp_path):
    index = _build_index()
    path = tmp_path / "idx"
    index.save(str(path))
    index.close()
    manifest = path / "manifest.json"
    manifest.write_text(manifest.read_text()[: manifest.stat().st_size // 2])
    with pytest.raises(IndexCorruptionError):
        load_index(str(path))


def test_non_json_manifest_raises_typed_error(tmp_path):
    index = _build_index()
    path = tmp_path / "idx"
    index.save(str(path))
    index.close()
    (path / "manifest.json").write_bytes(b"\x00\xff not json at all")
    with pytest.raises(IndexCorruptionError):
        load_index(str(path))


def test_wrong_format_raises_typed_error(tmp_path):
    path = tmp_path / "idx"
    os.makedirs(path)
    (path / "manifest.json").write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(IndexCorruptionError):
        ShardedVectorIndex.load(str(path))


def test_partial_arena_raises_typed_error(tmp_path):
    index = _build_index()
    path = tmp_path / "idx"
    index.save(str(path))
    index.close()
    arena = path / "arena.bin"
    data = arena.read_bytes()
    arena.write_bytes(data[: len(data) // 2])
    with pytest.raises(IndexCorruptionError, match="partial arena"):
        ShardedVectorIndex.load(str(path))


def test_missing_arena_raises_typed_error(tmp_path):
    index = _build_index()
    path = tmp_path / "idx"
    index.save(str(path))
    index.close()
    os.remove(path / "arena.bin")
    with pytest.raises(IndexCorruptionError, match="arena"):
        ShardedVectorIndex.load(str(path))


def test_missing_manifest_stays_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        ShardedVectorIndex.load(str(tmp_path / "nowhere"))


def test_corruption_error_is_permanent_and_valueerror():
    assert issubclass(IndexCorruptionError, PermanentError)
    assert issubclass(IndexCorruptionError, ValueError)  # pre-taxonomy contract


def test_resilient_load_primary_path(tmp_path):
    index = _build_index()
    path = tmp_path / "idx"
    index.save(str(path))
    expected = _neighbor_ids(index)
    index.close()
    loaded, source = load_index_resilient(str(path))
    assert source == "primary"
    assert _neighbor_ids(loaded) == expected
    loaded.close()


def test_resilient_load_falls_back_to_legacy_shards(tmp_path):
    """A v2 save whose manifest rots is rebuilt from its .npz archives."""
    index = _build_index()
    path = tmp_path / "idx"
    index.save(str(path), version=2)
    expected = _neighbor_ids(index)
    index.close()
    (path / "manifest.json").write_bytes(b"{corrupt")
    hub = TelemetryHub()
    loaded, source = load_index_resilient(str(path), window_days=10.0, hub=hub)
    assert source == "legacy"
    assert _neighbor_ids(loaded) == expected
    assert (
        hub.metrics.latest(
            "rcacopilot.faults.index_legacy_fallbacks", "chaos-recovery"
        )
        == 1.0
    )
    loaded.close()


def test_resilient_load_falls_back_to_rebuild(tmp_path):
    """A v3 save with a torn arena and no legacy archives rebuilds from store."""
    index = _build_index()
    path = tmp_path / "idx"
    index.save(str(path))
    expected = _neighbor_ids(index)
    index.close()
    arena = path / "arena.bin"
    arena.write_bytes(arena.read_bytes()[:100])
    hub = TelemetryHub()
    loaded, source = load_index_resilient(
        str(path), rebuild=_build_index, hub=hub
    )
    assert source == "rebuilt"
    assert _neighbor_ids(loaded) == expected
    assert (
        hub.metrics.latest("rcacopilot.faults.index_rebuilds", "chaos-recovery")
        == 1.0
    )
    loaded.close()


def test_resilient_load_exhausted_reraises(tmp_path):
    index = _build_index()
    path = tmp_path / "idx"
    index.save(str(path))
    index.close()
    (path / "manifest.json").write_bytes(b"{corrupt")
    with pytest.raises(IndexCorruptionError):
        load_index_resilient(str(path))


def test_load_legacy_shards_returns_none_without_archives(tmp_path):
    assert load_legacy_shards(str(tmp_path)) is None
