"""ResilientChatModel: retries, timeouts, breaker, degradation, parity."""

from __future__ import annotations

import pytest
import streamtest_utils as stu

from repro.chaos import (
    DEGRADED_PREDICTION_TEXT,
    FaultConfig,
    FaultInjector,
    FaultyChatModel,
    ResilientChatModel,
    RetryPolicy,
)
from repro.core.errors import LLMUnavailableError, SerializationError
from repro.llm import SimulatedLLM
from repro.llm.model import ChatMessage, complete_many
from repro.llm.prompts import build_prediction_prompt, parse_prediction, Demonstration
from repro.telemetry import TelemetryHub

PREDICTION_MESSAGES = [
    ChatMessage(
        role="user",
        content=build_prediction_prompt(
            "disk full on EXCH-01",
            [Demonstration("INC-1", "disk volume exhausted", "DiskFull")],
        ).text,
    )
]
SUMMARY_MESSAGES = [
    ChatMessage(
        role="user",
        content="error log lines here\n\nPlease summarize the above input.",
    )
]


class FlakyNTimesModel:
    """Raises a transient error for the first ``failures`` calls, then delegates."""

    def __init__(self, failures: int, exc_type=LLMUnavailableError) -> None:
        self.inner = SimulatedLLM()
        self.name = self.inner.name
        self.noise = 0.0
        self.remaining = failures
        self.exc_type = exc_type
        self.calls = 0

    def complete(self, messages, temperature: float = 0.0):
        return self.complete_many([messages], temperature=temperature)[0]

    def complete_many(self, conversations, temperature: float = 0.0):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc_type("endpoint down")
        return self.inner.complete_many(conversations, temperature=temperature)


class SlowVirtualModel:
    """Advances a FakeClock by ``seconds`` per batch call — virtual slowness."""

    def __init__(self, clock: stu.FakeClock, seconds: float) -> None:
        self.inner = SimulatedLLM()
        self.name = self.inner.name
        self.noise = 0.0
        self.clock = clock
        self.seconds = seconds

    def complete(self, messages, temperature: float = 0.0):
        return self.complete_many([messages], temperature=temperature)[0]

    def complete_many(self, conversations, temperature: float = 0.0):
        self.clock.advance(self.seconds)
        return self.inner.complete_many(conversations, temperature=temperature)


def _clock() -> stu.FakeClock:
    # auto_advance: backoff sleeps consume virtual time only.
    return stu.FakeClock(auto_advance=True)


def test_retry_then_success_no_degradation():
    inner = FlakyNTimesModel(failures=2)
    model = ResilientChatModel(
        inner, RetryPolicy(max_attempts=3, base_delay_seconds=0.0), clock=_clock()
    )
    result = model.complete(PREDICTION_MESSAGES)
    assert "Unseen" not in result.model  # real completion, not degraded
    stats = model.stats_dict()
    assert stats["retries"] == 2.0
    assert stats["successes"] == 1.0
    assert stats["degraded"] == 0.0


def test_attempts_exhausted_degrades_instead_of_raising():
    inner = FlakyNTimesModel(failures=10)
    model = ResilientChatModel(
        inner, RetryPolicy(max_attempts=3, base_delay_seconds=0.0), clock=_clock()
    )
    result = model.complete(PREDICTION_MESSAGES)
    assert result.text == DEGRADED_PREDICTION_TEXT
    assert result.model.endswith("-degraded")
    assert result.total_tokens == 0
    stats = model.stats_dict()
    assert stats["degraded"] == 1.0
    assert stats["retries"] == 2.0  # max_attempts - 1


def test_degraded_prediction_parses_to_unknown_category():
    prompt = build_prediction_prompt(
        "disk full on EXCH-01",
        [Demonstration("INC-1", "disk volume exhausted", "DiskFull")],
    )
    parsed = parse_prediction(DEGRADED_PREDICTION_TEXT, prompt)
    assert parsed.is_unseen
    assert parsed.new_category == "Unknown"
    assert "low confidence" in parsed.explanation.lower()


def test_degraded_summary_for_summarization_prompts():
    inner = FlakyNTimesModel(failures=10)
    model = ResilientChatModel(
        inner, RetryPolicy(max_attempts=1), clock=_clock()
    )
    result = model.complete(SUMMARY_MESSAGES)
    assert "Summary unavailable" in result.text


def test_permanent_errors_are_not_retried():
    inner = FlakyNTimesModel(failures=10, exc_type=SerializationError)
    model = ResilientChatModel(
        inner, RetryPolicy(max_attempts=5, base_delay_seconds=0.0), clock=_clock()
    )
    result = model.complete(PREDICTION_MESSAGES)
    assert result.model.endswith("-degraded")
    stats = model.stats_dict()
    assert stats["retries"] == 0.0
    assert stats["permanent_failures"] == 1.0
    assert inner.calls == 1


def test_timeout_counts_as_transient_failure():
    clock = _clock()
    model = ResilientChatModel(
        SlowVirtualModel(clock, seconds=3.0),
        RetryPolicy(
            max_attempts=2, base_delay_seconds=0.0, call_timeout_seconds=1.0
        ),
        clock=clock,
    )
    result = model.complete(PREDICTION_MESSAGES)
    assert result.model.endswith("-degraded")
    stats = model.stats_dict()
    assert stats["timeouts"] == 2.0
    assert stats["transient_failures"] == 2.0


def test_backoff_is_capped_exponential_with_jitter_on_clock():
    clock = _clock()
    inner = FlakyNTimesModel(failures=4)
    policy = RetryPolicy(
        max_attempts=5,
        base_delay_seconds=1.0,
        max_delay_seconds=4.0,
        jitter=0.25,
    )
    model = ResilientChatModel(inner, policy, clock=clock, seed=3)
    model.complete(PREDICTION_MESSAGES)
    # 4 backoffs: 1, 2, 4 (cap), 4 (cap), each jittered by at most 25%.
    elapsed = clock.monotonic()
    assert 11.0 * 0.75 <= elapsed <= 11.0 * 1.25


def test_retry_budget_exhausts_across_calls():
    clock = _clock()
    model = ResilientChatModel(
        FlakyNTimesModel(failures=100),
        RetryPolicy(
            max_attempts=3, base_delay_seconds=0.0, retry_budget=2,
            failure_threshold=100,
        ),
        clock=clock,
    )
    model.complete(PREDICTION_MESSAGES)  # burns both retry tokens
    stats = model.stats_dict()
    assert stats["retries"] == 2.0
    assert stats["retry_budget_left"] == 0.0
    model.complete(PREDICTION_MESSAGES)  # no tokens left: fail fast
    stats = model.stats_dict()
    assert stats["retries"] == 2.0
    assert stats["degraded"] == 2.0


def test_breaker_trips_refuses_and_recovers_deterministically():
    clock = _clock()
    inner = FlakyNTimesModel(failures=3)
    policy = RetryPolicy(
        max_attempts=1,
        failure_threshold=3,
        breaker_cooldown_seconds=30.0,
    )
    model = ResilientChatModel(inner, policy, clock=clock)
    # Three failed calls trip the breaker.
    for _ in range(3):
        assert model.complete(PREDICTION_MESSAGES).model.endswith("-degraded")
    stats = model.stats_dict()
    assert stats["breaker_trips"] == 1.0
    assert stats["breaker_state"] == 2.0  # open
    # While open: refused without touching the inner model.
    calls_before = inner.calls
    assert model.complete(PREDICTION_MESSAGES).model.endswith("-degraded")
    assert inner.calls == calls_before
    assert model.stats_dict()["refused"] == 1.0
    # After the cooldown the half-open probe goes through and closes it.
    clock.advance(30.0)
    result = model.complete(PREDICTION_MESSAGES)
    assert not result.model.endswith("-degraded")
    stats = model.stats_dict()
    assert stats["breaker_recoveries"] == 1.0
    assert stats["breaker_state"] == 0.0  # closed


def test_breaker_half_open_failure_reopens():
    clock = _clock()
    inner = FlakyNTimesModel(failures=100)
    policy = RetryPolicy(
        max_attempts=1, failure_threshold=2, breaker_cooldown_seconds=10.0
    )
    model = ResilientChatModel(inner, policy, clock=clock)
    model.complete(PREDICTION_MESSAGES)
    model.complete(PREDICTION_MESSAGES)
    assert model.stats_dict()["breaker_trips"] == 1.0
    clock.advance(10.0)
    model.complete(PREDICTION_MESSAGES)  # half-open probe fails
    stats = model.stats_dict()
    assert stats["breaker_trips"] == 2.0
    assert stats["breaker_state"] == 2.0


def test_healthy_wrapper_is_value_identical_to_bare_model():
    """The parity contract: no faults, closed breaker => wholesale delegation."""
    conversations = [PREDICTION_MESSAGES, SUMMARY_MESSAGES, PREDICTION_MESSAGES]
    bare = SimulatedLLM()
    expected = complete_many(bare, conversations)

    injector = FaultInjector(seed=0)  # nothing configured: inert
    inner = SimulatedLLM()
    wrapped = ResilientChatModel(
        FaultyChatModel(inner, injector),
        RetryPolicy(call_timeout_seconds=None),
        clock=_clock(),
    )
    actual = wrapped.complete_many(conversations)
    assert [r.text for r in actual] == [r.text for r in expected]
    assert [r.model for r in actual] == [r.model for r in expected]
    # Usage accounting (including in-batch dedup) matches the bare model.
    assert inner.usage.calls == bare.usage.calls
    assert inner.usage.prompt_tokens == bare.usage.prompt_tokens
    # The wrapper stays transparent to the predictor's determinism check.
    assert getattr(wrapped, "noise", None) == 0.0


def test_corrupt_fault_degrades_through_the_parser():
    injector = FaultInjector(seed=0).add(
        FaultConfig(site="llm.complete", corrupt=True, error=None)
    )
    model = FaultyChatModel(SimulatedLLM(), injector)
    result = model.complete(PREDICTION_MESSAGES)
    assert result.text.startswith("corrupted-completion")
    prompt = build_prediction_prompt(
        "disk full on EXCH-01",
        [Demonstration("INC-1", "disk volume exhausted", "DiskFull")],
    )
    parsed = parse_prediction(result.text, prompt)
    assert parsed.is_unseen  # garbage falls back to the unseen option


def test_retry_telemetry_export():
    hub = TelemetryHub()
    model = ResilientChatModel(
        FlakyNTimesModel(failures=1),
        RetryPolicy(max_attempts=2, base_delay_seconds=0.0),
        clock=_clock(),
        hub=hub,
    )
    model.complete(PREDICTION_MESSAGES)
    model.export()
    assert hub.metrics.latest("rcacopilot.retry.retries", "resilient-llm") == 1.0
    assert hub.metrics.latest("rcacopilot.retry.successes", "resilient-llm") == 1.0
