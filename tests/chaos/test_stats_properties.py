"""Property-based invariants of ``IngestStats`` under injected faults.

Whatever mix of alerts and fault rates the stream sees, the accounting
contract holds: ``processed`` never exceeds ``submitted``, counters only
ever grow, every future resolves by ``stop()``, and the flush-reason
histogram sums to the batch count.  Everything runs on a FakeClock —
zero real sleeps regardless of the injected delays hypothesis picks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import streamtest_utils as stu

from repro.chaos import (
    FaultConfig,
    FaultInjector,
    FaultyChatModel,
    ResilientChatModel,
    RetryPolicy,
)
from repro.datagen import generate_corpus
from repro.llm import SimulatedLLM

_TYPES = [stu.SLEEPY_TYPE, stu.FLAKY_TYPE, stu.IDLE_TYPE]
#: One small shared corpus: generation is deterministic, indexing is per-test.
_HISTORY = generate_corpus(
    total_incidents=24, total_categories=12, seed=7, duration_days=30.0
)

_MONOTONIC_FIELDS = (
    "submitted",
    "processed",
    "batches",
    "collect_failures",
    "worker_errors",
)


@settings(max_examples=8, deadline=None)
@given(
    alert_kinds=st.lists(st.integers(0, 2), min_size=1, max_size=10),
    handler_probability=st.floats(0.0, 1.0),
    llm_probability=st.floats(0.0, 0.5),
    llm_delay=st.floats(0.0, 30.0),
    seed=st.integers(0, 2**16),
)
def test_stats_invariants_under_injected_faults(
    alert_kinds, handler_probability, llm_probability, llm_delay, seed
):
    clock = stu.FakeClock(auto_advance=True)
    injector = FaultInjector(seed=seed, clock=clock)
    model = ResilientChatModel(
        FaultyChatModel(SimulatedLLM(), injector),
        RetryPolicy(
            max_attempts=2, base_delay_seconds=0.0, failure_threshold=1000
        ),
        clock=clock,
    )
    copilot = stu.build_stream_copilot(model=model, with_history=False)
    copilot.index_history(_HISTORY)
    copilot.collection._executor.fault_injector = injector
    # Armed after history indexing: faults target the stream only.
    injector.add(FaultConfig(site="handler.step", probability=handler_probability))
    injector.add(
        FaultConfig(
            site="llm.complete",
            probability=llm_probability,
            delay_seconds=llm_delay,
        )
    )
    ingestor = copilot.stream(stu.ingest_config(collect_workers=2, max_batch=4))

    futures = []
    previous = ingestor.stats().as_dict()
    for position, kind in enumerate(alert_kinds):
        futures.append(
            ingestor.submit(
                stu.make_stream_alert(position, alert_type=_TYPES[kind])
            )
        )
        if position % 3 == 2:
            ingestor.flush()
        current = ingestor.stats().as_dict()
        for field in _MONOTONIC_FIELDS:
            assert current[field] >= previous[field]  # counters only grow
        assert current["processed"] <= current["submitted"]
        previous = current

    ingestor.stop()
    stats = ingestor.stats()
    assert stats.processed == stats.submitted == len(alert_kinds)
    assert all(future.done() for future in futures)  # nothing stranded
    assert sum(stats.flush_reasons.values()) == stats.batches


@settings(max_examples=8, deadline=None)
@given(
    burst=st.integers(1, 8),
    max_injections=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_bounded_fault_budget_bounds_failed_futures(burst, max_injections, seed):
    """At most ``max_injections`` futures fail; the rest carry reports."""
    injector = FaultInjector(seed=seed).add(
        FaultConfig(site="handler.step", max_injections=max_injections)
    )
    copilot = stu.build_stream_copilot(with_history=False)
    copilot.collection._executor.fault_injector = injector
    ingestor = copilot.stream(stu.ingest_config(collect_workers=2))
    futures = ingestor.submit_many(
        [stu.make_stream_alert(position) for position in range(burst)]
    )
    ingestor.stop()
    reports, failures = stu.drain_futures(futures)
    assert len(failures) == min(burst, max_injections)
    assert len(reports) + len(failures) == burst
    assert ingestor.stats().processed == burst
