"""Tests for the simulated Transport service: topology, workload, faults."""

from __future__ import annotations

import random

import pytest

from repro.cloudsim import (
    FAULT_INJECTORS,
    TABLE1_SCENARIOS,
    TransportService,
    WorkloadConfig,
    WorkloadGenerator,
    build_topology,
    injector_for,
    scenario_by_category,
    scenario_by_number,
)
from repro.telemetry import TelemetryHub


class TestTopology:
    def test_build_shape(self):
        topology = build_topology(num_forests=2, mailbox_per_forest=3)
        assert len(topology.forests) == 2
        assert len(topology.forest("forest-01").by_role("mailbox")) == 3

    def test_machine_lookup(self):
        topology = build_topology()
        machine = topology.machines[0]
        assert topology.machine(machine.name) is machine
        assert topology.machine("nope") is None
        assert topology.forest("nope") is None

    def test_forest_of_mapping(self):
        topology = build_topology(num_forests=2)
        mapping = topology.forest_of()
        assert all(name.startswith(forest) for name, forest in mapping.items())

    def test_machines_by_role(self):
        topology = build_topology()
        hubs = topology.machines_by_role("hub")
        assert hubs and all(m.role == "hub" for m in hubs)

    def test_names_are_deterministic(self):
        a = build_topology()
        b = build_topology()
        assert [m.name for m in a.machines] == [m.name for m in b.machines]


class TestWorkload:
    def test_generates_metrics_and_traces(self):
        topology = build_topology(num_forests=1)
        hub = TelemetryHub()
        generator = WorkloadGenerator(topology, hub, WorkloadConfig(), rng=random.Random(1))
        generator.run(0.0, 3600.0)
        assert len(hub.metrics) > 0
        assert len(hub.traces) > 0
        assert "disk_usage_percent" in hub.metrics.metric_names()

    def test_machine_state_overrides_metrics(self):
        topology = build_topology(num_forests=1)
        machine = topology.machines_by_role("frontdoor")[0]
        machine.state["udp_socket_count"] = 15000.0
        hub = TelemetryHub()
        WorkloadGenerator(topology, hub, rng=random.Random(1)).run(0.0, 600.0)
        assert hub.metrics.latest("udp_socket_count", machine.name) == 15000.0


class TestFaultInjectors:
    def test_every_table1_category_has_injector(self):
        for scenario in TABLE1_SCENARIOS:
            assert scenario.category in FAULT_INJECTORS

    def test_injector_for_unknown(self):
        assert injector_for("NotACategory") is None

    @pytest.mark.parametrize("category", sorted(FAULT_INJECTORS))
    def test_injection_produces_expected_alert(self, category):
        service = TransportService(seed=hash(category) % 1000)
        service.warm_up(hours=0.5)
        outcome = service.inject_and_detect(category)
        assert outcome.fault.category == category
        assert outcome.detected, f"no alert raised for {category}"
        alert_types = {a.alert_type for a in outcome.alerts}
        assert outcome.fault.expected_alert_type in alert_types

    def test_unknown_category_raises(self):
        service = TransportService(seed=1)
        with pytest.raises(KeyError):
            service.inject("NotACategory")


class TestScenarios:
    def test_table1_has_ten_rows(self):
        assert len(TABLE1_SCENARIOS) == 10

    def test_lookup_by_category_and_number(self):
        assert scenario_by_category("FullDisk").number == 8
        assert scenario_by_number(2).category == "HubPortExhaustion"
        assert scenario_by_category("Nope") is None
        assert scenario_by_number(99) is None

    def test_occurrences_match_paper(self):
        expected = {1: 3, 2: 27, 3: 6, 4: 15, 5: 11, 6: 2, 7: 9, 8: 2, 9: 11, 10: 22}
        for scenario in TABLE1_SCENARIOS:
            assert scenario.occurrences == expected[scenario.number]

    def test_as_table_row(self):
        row = TABLE1_SCENARIOS[0].as_table_row()
        assert row["Category"] == "AuthCertIssue"
        assert row["Sev."] == "1"


class TestTransportService:
    def test_warm_up_and_describe(self, warm_service: TransportService):
        assert warm_service.clock > 0
        assert "TransportService" in warm_service.describe()

    def test_advance_returns_alert_list(self):
        service = TransportService(seed=9)
        alerts = service.advance(1800.0)
        assert isinstance(alerts, list)

    def test_detection_rates(self):
        service = TransportService(seed=4)
        rates = service.detection_rates(["HubPortExhaustion"], trials=1)
        assert rates["HubPortExhaustion"] in (0.0, 1.0)
