"""Shared fixtures for the test suite.

Expensive artefacts (corpora, fitted embedders, running simulators) are
session-scoped so the suite stays fast while still exercising real objects.
"""

from __future__ import annotations

import pytest

from repro.cloudsim import TransportService
from repro.datagen import CorpusConfig, CorpusGenerator, generate_corpus
from repro.handlers import default_registry
from repro.incidents import IncidentStore
from repro.telemetry import TelemetryHub


@pytest.fixture(scope="session")
def tiny_corpus() -> IncidentStore:
    """A very small corpus for unit tests that just need labelled incidents."""
    return generate_corpus(
        total_incidents=40, total_categories=12, seed=11, duration_days=60.0
    )


@pytest.fixture(scope="session")
def small_corpus() -> IncidentStore:
    """A small-but-realistic corpus for retrieval / pipeline tests."""
    return generate_corpus(
        total_incidents=90, total_categories=25, seed=23, duration_days=120.0
    )


@pytest.fixture(scope="session")
def corpus_split(small_corpus):
    """(train, test) chronological split of the small corpus."""
    return small_corpus.chronological_split(0.75)


@pytest.fixture()
def hub() -> TelemetryHub:
    """A fresh, empty telemetry hub."""
    return TelemetryHub()


@pytest.fixture(scope="session")
def warm_service() -> TransportService:
    """A Transport simulation warmed up with background traffic."""
    service = TransportService(seed=101)
    service.warm_up(hours=1.0)
    return service


@pytest.fixture(scope="session")
def registry():
    """The built-in handler registry."""
    return default_registry()
