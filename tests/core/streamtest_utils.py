"""Shared builders for the streaming-concurrency test suites.

Everything here is deterministic by construction so the serial/pooled
parity suites can compare runs value-for-value:

* the **flaky** classifier fails based on the alert *message* (never on
  timing or global order), so the same alert stream produces the same
  failures whether collection ran serially, on a thread pool, or in worker
  processes;
* the **slow** classifier sleeps a fixed couple of milliseconds, simulating
  the I/O-bound telemetry pulls that make a collection pool worthwhile;
* both classifiers are registered by name at import time, which also makes
  the handlers JSON-serializable — the requirement of the process
  collection backend (workers resolve classifiers through the registry
  after rebuilding the handler from its document).

Import this module with a plain ``import streamtest_utils`` — pytest puts
each test file's directory on ``sys.path``, and importing it in the parent
process (before any process pool forks) is exactly what registers the
classifiers for worker processes too.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core import (
    CollectionConfig,
    IndexConfig,
    IngestConfig,
    PipelineConfig,
    RCACopilot,
)
from repro.core.pipeline import DiagnosisReport
from repro.datagen import generate_corpus
from repro.handlers import (
    HandlerRegistry,
    MitigationAction,
    QueryAction,
    linear_handler,
    register_classifier,
)
from repro.llm import SimulatedLLM
from repro.monitors import Alert, AlertScope
from repro.telemetry import TelemetryHub

#: Alert messages containing this marker make the flaky classifier raise.
FLAKY_MARKER = "flaky-telemetry"

#: Alert types served by :func:`stream_test_registry`.
SLEEPY_TYPE = "StreamSleepy"
FLAKY_TYPE = "StreamFlaky"


@register_classifier("stream_test_flaky")
def flaky_classifier(context, table) -> str:
    """Raise iff the alert message carries the flaky marker (deterministic)."""
    if FLAKY_MARKER in context.incident.alert_message:
        raise RuntimeError(
            f"simulated telemetry outage for {context.incident.incident_id}"
        )
    return "default"


@register_classifier("stream_test_slow")
def slow_classifier(context, table) -> str:
    """Sleep-simulate an I/O-bound telemetry pull."""
    time.sleep(0.002)
    return "default"


def stream_test_registry() -> HandlerRegistry:
    """Two serializable handlers: one slow (I/O-bound), one flaky."""
    registry = HandlerRegistry()
    registry.register(
        linear_handler(
            SLEEPY_TYPE,
            "stream-sleepy",
            [
                QueryAction(
                    "slow_metrics",
                    source="metrics",
                    metric_names=["stream_m1"],
                    classify=slow_classifier,
                ),
                QueryAction("recent_events", source="events"),
                MitigationAction("suggest_restart", "Restart the sleepy component"),
            ],
        )
    )
    registry.register(
        linear_handler(
            FLAKY_TYPE,
            "stream-flaky",
            [
                QueryAction("maybe_fail", source="error_logs", classify=flaky_classifier),
                QueryAction("flaky_metrics", source="metrics", metric_names=["stream_m1"]),
                MitigationAction("suggest_patch", "Patch the flaky prober"),
            ],
        )
    )
    return registry


def make_stream_alert(
    index: int, alert_type: str = SLEEPY_TYPE, flaky: bool = False
) -> Alert:
    """A deterministic synthetic alert; ``flaky`` plants the failure marker."""
    message = f"synthetic stream alert {index}"
    if flaky:
        message = f"{message} {FLAKY_MARKER}"
    return Alert(
        alert_id=f"AL-STREAM-{index:05d}",
        alert_type=alert_type,
        scope=AlertScope.FOREST,
        timestamp=3600.0 + 17.0 * index,
        machine="",
        forest="forest-01",
        message=message,
        severity=3,
    )


def seed_hub(hub: TelemetryHub) -> None:
    """Write a fixed slab of telemetry inside the test alerts' windows."""
    for step in range(4):
        timestamp = 3000.0 + 120.0 * step
        for machine, value in (("EXCH-01", 40.0 + step), ("EXCH-02", 55.0 - step)):
            hub.emit_metric("stream_m1", machine, timestamp, value, unit="count")
        hub.emit_log(
            timestamp,
            "error",
            "Transport",
            "EXCH-01",
            f"WinSock error 10055 while probing endpoint {step}",
        )


def build_stream_copilot(
    strict: bool = True,
    index_backend: str = "flat",
    wall_budget: Optional[float] = None,
    registry: Optional[HandlerRegistry] = None,
    with_history: bool = True,
) -> RCACopilot:
    """A small indexed copilot over the stream-test registry and seeded hub."""
    config = PipelineConfig(
        collection=CollectionConfig(strict=strict, handler_wall_budget_seconds=wall_budget),
        index=IndexConfig(backend=index_backend, window_days=20.0),
    )
    hub = TelemetryHub()
    seed_hub(hub)
    copilot = RCACopilot(
        hub,
        registry=registry if registry is not None else stream_test_registry(),
        model=SimulatedLLM(),
        config=config,
    )
    if with_history:
        history = generate_corpus(
            total_incidents=40, total_categories=12, seed=11, duration_days=60.0
        )
        copilot.index_history(history)
    return copilot


def ingest_config(
    collect_workers: Optional[int],
    collect_backend: str = "thread",
    max_batch: int = 64,
) -> IngestConfig:
    """An IngestConfig tuned for deterministic manual-flush tests."""
    return IngestConfig(
        max_batch=max_batch,
        max_latency_seconds=5.0,
        collect_workers=collect_workers,
        collect_backend=collect_backend,
    )


def report_fingerprint(report: DiagnosisReport) -> Tuple:
    """Everything deterministic about a report (timings excluded)."""
    execution = report.collection.execution
    return (
        report.incident.incident_id,
        report.incident.alert_type,
        report.incident.alert_message,
        report.collection.matched_handler,
        execution is not None,
        tuple(step.node_id for step in execution.steps) if execution else (),
        tuple(sorted(report.incident.action_output.items())),
        report.incident.diagnostic.render() if report.incident.diagnostic else "",
        tuple(execution.mitigations) if execution else (),
        report.predicted_label,
        report.explanation,
        tuple(n.incident_id for n in (report.prediction.neighbors if report.prediction else [])),
    )


def failure_fingerprint(exc: BaseException) -> Tuple[str, str]:
    """Exception identity that survives the process boundary: (type, text)."""
    return (type(exc).__name__, str(exc))


def index_state(copilot: RCACopilot, incident_ids: List[str]) -> Tuple:
    """Deterministic snapshot of the live index after feedback."""
    store = copilot.prediction.vector_store
    return (
        len(store),
        tuple(
            (incident_id, store.get(incident_id).category if incident_id in store else None)
            for incident_id in incident_ids
        ),
    )


def drain_futures(futures) -> Tuple[Dict[int, Tuple], Dict[int, Tuple[str, str]]]:
    """Split resolved futures into report fingerprints and failure fingerprints."""
    reports: Dict[int, Tuple] = {}
    failures: Dict[int, Tuple[str, str]] = {}
    for position, future in enumerate(futures):
        try:
            reports[position] = report_fingerprint(future.result(timeout=60.0))
        except Exception as exc:  # noqa: BLE001 - the failure is the datum
            failures[position] = failure_fingerprint(exc)
    return reports, failures
