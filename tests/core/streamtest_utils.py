"""Shared builders for the streaming-concurrency test suites.

Everything here is deterministic by construction so the serial/pooled
parity suites can compare runs value-for-value:

* the **flaky** classifier fails based on the alert *message* (never on
  timing or global order), so the same alert stream produces the same
  failures whether collection ran serially, on a thread pool, or in worker
  processes;
* the **slow** classifier sleeps a fixed couple of milliseconds, simulating
  the I/O-bound telemetry pulls that make a collection pool worthwhile;
* both classifiers are registered by name at import time, which also makes
  the handlers JSON-serializable — the requirement of the process
  collection backend (workers resolve classifiers through the registry
  after rebuilding the handler from its document).

Import this module with a plain ``import streamtest_utils`` — pytest puts
each test file's directory on ``sys.path``, and importing it in the parent
process (before any process pool forks) is exactly what registers the
classifiers for worker processes too.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.core.clock import VirtualClock

from repro.core import (
    CollectionConfig,
    IndexConfig,
    IngestConfig,
    PipelineConfig,
    RCACopilot,
)
from repro.core.pipeline import DiagnosisReport
from repro.datagen import generate_corpus
from repro.handlers import (
    HandlerRegistry,
    MitigationAction,
    QueryAction,
    linear_handler,
    register_classifier,
)
from repro.llm import SimulatedLLM
from repro.monitors import Alert, AlertScope
from repro.telemetry import TelemetryHub

class FakeClock(VirtualClock):
    """Step-controlled deterministic clock for the streaming test suites.

    The implementation lives in :class:`repro.core.clock.VirtualClock`
    (promoted there so the record/replay bus and benchmarks can drive the
    same clock); this alias keeps the test suites' historical name.
    """


class GateModel:
    """A :class:`SimulatedLLM` whose completions can block on an event.

    The stop-drain tests use it to hold a prediction in flight at a known
    point: ``close()`` arms the gate, the next completion sets ``entered``
    (so the test knows the prediction phase has started) and parks until
    ``open()``.  The gate starts open so history indexing and summary
    warming run unimpeded.  Waits are bounded by a real-time hang guard.
    """

    def __init__(self, name: str = "gated-simulated-gpt-4") -> None:
        self._inner = SimulatedLLM(name=name)
        self.name = name
        self.noise = 0.0  # keeps ChainOfThoughtPredictor._deterministic() true
        self.entered = threading.Event()
        self._release = threading.Event()
        self._release.set()

    def close(self) -> None:
        """Arm the gate: subsequent completions block until :meth:`open`."""
        self.entered.clear()
        self._release.clear()

    def open(self) -> None:
        """Release every parked completion and let new ones through."""
        self._release.set()

    def _wait(self) -> None:
        if not self._release.is_set():
            self.entered.set()
            if not self._release.wait(timeout=30.0):
                raise TimeoutError("GateModel gate never released")

    def complete(self, messages, temperature: float = 0.0):
        self._wait()
        return self._inner.complete(messages, temperature=temperature)

    def complete_many(self, conversations, temperature: float = 0.0):
        self._wait()
        return self._inner.complete_many(conversations, temperature=temperature)


#: Alert messages containing this marker make the flaky classifier raise.
FLAKY_MARKER = "flaky-telemetry"

#: Alert types served by :func:`stream_test_registry`.
SLEEPY_TYPE = "StreamSleepy"
FLAKY_TYPE = "StreamFlaky"
#: Clock-driven collect-bound alerts: their handler advances a FakeClock
#: instead of really sleeping, so "I/O time" is exact and virtual.
BUSY_TYPE = "StreamBusy"
#: Idle alerts: a handler that does plain hub queries and advances nothing,
#: so under a FakeClock the batch measures exactly zero collect seconds.
IDLE_TYPE = "StreamIdle"

#: Mutable hookup of the virtual-I/O classifier: tests install a FakeClock
#: (and per-call virtual duration) here; None leaves the classifier inert.
VIRTUAL_IO: Dict[str, Optional[object]] = {"clock": None, "seconds": 0.05}


@register_classifier("stream_test_virtual_io")
def virtual_io_classifier(context, table) -> str:
    """Advance the installed FakeClock: deterministic simulated I/O wait."""
    clock = VIRTUAL_IO["clock"]
    if clock is not None:
        clock.advance(VIRTUAL_IO["seconds"])
    return "default"


@register_classifier("stream_test_flaky")
def flaky_classifier(context, table) -> str:
    """Raise iff the alert message carries the flaky marker (deterministic)."""
    if FLAKY_MARKER in context.incident.alert_message:
        raise RuntimeError(
            f"simulated telemetry outage for {context.incident.incident_id}"
        )
    return "default"


@register_classifier("stream_test_slow")
def slow_classifier(context, table) -> str:
    """Sleep-simulate an I/O-bound telemetry pull."""
    time.sleep(0.002)
    return "default"


def stream_test_registry() -> HandlerRegistry:
    """Two serializable handlers: one slow (I/O-bound), one flaky."""
    registry = HandlerRegistry()
    registry.register(
        linear_handler(
            SLEEPY_TYPE,
            "stream-sleepy",
            [
                QueryAction(
                    "slow_metrics",
                    source="metrics",
                    metric_names=["stream_m1"],
                    classify=slow_classifier,
                ),
                QueryAction("recent_events", source="events"),
                MitigationAction("suggest_restart", "Restart the sleepy component"),
            ],
        )
    )
    registry.register(
        linear_handler(
            FLAKY_TYPE,
            "stream-flaky",
            [
                QueryAction("maybe_fail", source="error_logs", classify=flaky_classifier),
                QueryAction("flaky_metrics", source="metrics", metric_names=["stream_m1"]),
                MitigationAction("suggest_patch", "Patch the flaky prober"),
            ],
        )
    )
    registry.register(
        linear_handler(
            BUSY_TYPE,
            "stream-busy",
            [
                QueryAction(
                    "virtual_probe",
                    source="metrics",
                    metric_names=["stream_m1"],
                    classify=virtual_io_classifier,
                ),
                MitigationAction("suggest_scale", "Scale out the busy component"),
            ],
        )
    )
    registry.register(
        linear_handler(
            IDLE_TYPE,
            "stream-idle",
            [
                QueryAction("idle_events", source="events"),
            ],
        )
    )
    return registry


def make_stream_alert(
    index: int, alert_type: str = SLEEPY_TYPE, flaky: bool = False
) -> Alert:
    """A deterministic synthetic alert; ``flaky`` plants the failure marker."""
    message = f"synthetic stream alert {index}"
    if flaky:
        message = f"{message} {FLAKY_MARKER}"
    return Alert(
        alert_id=f"AL-STREAM-{index:05d}",
        alert_type=alert_type,
        scope=AlertScope.FOREST,
        timestamp=3600.0 + 17.0 * index,
        machine="",
        forest="forest-01",
        message=message,
        severity=3,
    )


def seed_hub(hub: TelemetryHub) -> None:
    """Write a fixed slab of telemetry inside the test alerts' windows."""
    for step in range(4):
        timestamp = 3000.0 + 120.0 * step
        for machine, value in (("EXCH-01", 40.0 + step), ("EXCH-02", 55.0 - step)):
            hub.emit_metric("stream_m1", machine, timestamp, value, unit="count")
        hub.emit_log(
            timestamp,
            "error",
            "Transport",
            "EXCH-01",
            f"WinSock error 10055 while probing endpoint {step}",
        )


def build_stream_copilot(
    strict: bool = True,
    index_backend: str = "flat",
    wall_budget: Optional[float] = None,
    registry: Optional[HandlerRegistry] = None,
    with_history: bool = True,
    model: Optional[object] = None,
) -> RCACopilot:
    """A small indexed copilot over the stream-test registry and seeded hub.

    ``model`` swaps the chat model (e.g. a :class:`GateModel` whose
    completions block on an event); the default is a fresh
    :class:`SimulatedLLM`.
    """
    config = PipelineConfig(
        collection=CollectionConfig(strict=strict, handler_wall_budget_seconds=wall_budget),
        index=IndexConfig(backend=index_backend, window_days=20.0),
    )
    hub = TelemetryHub()
    seed_hub(hub)
    copilot = RCACopilot(
        hub,
        registry=registry if registry is not None else stream_test_registry(),
        model=model if model is not None else SimulatedLLM(),
        config=config,
    )
    if with_history:
        history = generate_corpus(
            total_incidents=40, total_categories=12, seed=11, duration_days=60.0
        )
        copilot.index_history(history)
    return copilot


def ingest_config(
    collect_workers: Optional[int],
    collect_backend: str = "thread",
    max_batch: int = 64,
    pipeline_depth: int = 1,
    predict_chunk_size: Optional[int] = None,
) -> IngestConfig:
    """An IngestConfig tuned for deterministic manual-flush tests."""
    return IngestConfig(
        max_batch=max_batch,
        max_latency_seconds=5.0,
        collect_workers=collect_workers,
        collect_backend=collect_backend,
        pipeline_depth=pipeline_depth,
        predict_chunk_size=predict_chunk_size,
    )


def report_fingerprint(report: DiagnosisReport) -> Tuple:
    """Everything deterministic about a report (timings excluded)."""
    execution = report.collection.execution
    return (
        report.incident.incident_id,
        report.incident.alert_type,
        report.incident.alert_message,
        report.collection.matched_handler,
        execution is not None,
        tuple(step.node_id for step in execution.steps) if execution else (),
        tuple(sorted(report.incident.action_output.items())),
        report.incident.diagnostic.render() if report.incident.diagnostic else "",
        tuple(execution.mitigations) if execution else (),
        report.predicted_label,
        report.explanation,
        tuple(n.incident_id for n in (report.prediction.neighbors if report.prediction else [])),
    )


def failure_fingerprint(exc: BaseException) -> Tuple[str, str]:
    """Exception identity that survives the process boundary: (type, text)."""
    return (type(exc).__name__, str(exc))


def index_state(copilot: RCACopilot, incident_ids: List[str]) -> Tuple:
    """Deterministic snapshot of the live index after feedback."""
    store = copilot.prediction.vector_store
    return (
        len(store),
        tuple(
            (incident_id, store.get(incident_id).category if incident_id in store else None)
            for incident_id in incident_ids
        ),
    )


def drain_futures(futures) -> Tuple[Dict[int, Tuple], Dict[int, Tuple[str, str]]]:
    """Split resolved futures into report fingerprints and failure fingerprints."""
    reports: Dict[int, Tuple] = {}
    failures: Dict[int, Tuple[str, str]] = {}
    for position, future in enumerate(futures):
        try:
            reports[position] = report_fingerprint(future.result(timeout=60.0))
        except Exception as exc:  # noqa: BLE001 - the failure is the datum
            failures[position] = failure_fingerprint(exc)
    return reports, failures
