"""Deterministic tests for the collection-pool autoscaler and its clock harness.

Everything here runs on a step-controlled :class:`FakeClock` — virtual I/O
is simulated by a classifier that *advances* the clock instead of sleeping,
so utilization, cooldown windows, and latency deadlines are exact numbers
and the control loop's behaviour is reproducible bit for bit.  There are no
real ``time.sleep`` calls anywhere in this module.
"""

from __future__ import annotations

import copy
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import streamtest_utils as stu
from repro.core import (
    AutoscalePolicy,
    CollectionPool,
    IngestConfig,
    PoolAutoscaler,
    RCACopilot,
)

FakeClock = stu.FakeClock


# ------------------------------------------------------------------ FakeClock
class TestFakeClock:
    def test_monotonic_advances_only_on_demand(self):
        clock = FakeClock(start=100.0)
        assert clock.monotonic() == 100.0
        clock.advance(2.5)
        assert clock.monotonic() == 102.5
        assert clock.time() == 102.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_auto_advance_sleep_jumps_time(self):
        clock = FakeClock(auto_advance=True)
        clock.sleep(3.0)
        assert clock.monotonic() == 3.0

    def test_step_sleep_parks_until_advanced(self):
        clock = FakeClock()
        woke = threading.Event()

        def sleeper():
            clock.sleep(1.0)
            woke.set()

        thread = threading.Thread(target=sleeper)
        thread.start()
        clock.wait_for_sleepers(1)
        assert not woke.is_set()
        clock.advance(0.5)
        assert not woke.wait(timeout=0)  # deadline not reached yet
        clock.advance(0.5)
        assert woke.wait(timeout=10.0)
        thread.join(timeout=10.0)

    def test_wake_without_sleepers_leaves_no_residue(self):
        """A wake with nobody parked is a pure no-op (stop() re-issues
        wakes on its join loop instead of the clock remembering them), so
        a later sleep still parks normally."""
        clock = FakeClock()
        clock.wake()
        woke = threading.Event()

        def sleeper():
            clock.sleep(1.0)
            woke.set()

        thread = threading.Thread(target=sleeper)
        thread.start()
        clock.wait_for_sleepers(1)
        assert not woke.is_set()  # the earlier wake was not consumed here
        clock.advance(1.0)
        assert woke.wait(timeout=10.0)
        thread.join(timeout=10.0)

    def test_wake_unparks_current_sleepers(self):
        clock = FakeClock()
        woke = threading.Event()

        def sleeper():
            clock.sleep(1e9)
            woke.set()

        thread = threading.Thread(target=sleeper)
        thread.start()
        clock.wait_for_sleepers(1)
        clock.wake()
        assert woke.wait(timeout=10.0)
        thread.join(timeout=10.0)
        assert clock.monotonic() == 0.0  # wake moves threads, not time


# ------------------------------------------------------------- policy/config
class TestPolicyValidation:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(high_utilization=0.3, low_utilization=0.5)
        with pytest.raises(ValueError):
            AutoscalePolicy(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(grow_step=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(hysteresis_batches=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(cooldown_seconds=-1.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(burst_queue_factor=0.0)

    def test_ingest_config_bounds_validated(self):
        with pytest.raises(ValueError):
            IngestConfig(collect_workers_min=0)
        with pytest.raises(ValueError):
            IngestConfig(collect_workers_min=4, collect_workers_max=2)
        with pytest.raises(ValueError):
            IngestConfig(
                autoscale=AutoscalePolicy(),
                collect_workers=9,
                collect_workers_max=8,
            )
        config = IngestConfig(autoscale=AutoscalePolicy(), collect_workers_min=2)
        assert config.initial_collect_workers() == 2
        assert IngestConfig(collect_workers=3).initial_collect_workers() == 3
        assert IngestConfig().initial_collect_workers() is None


# ------------------------------------------------------------ control logic
def make_scaler(clock, **overrides):
    defaults = dict(
        high_utilization=0.8,
        low_utilization=0.3,
        ewma_alpha=1.0,  # no smoothing: the observation IS the signal
        hysteresis_batches=2,
        cooldown_seconds=10.0,
        burst_queue_factor=2.0,
    )
    defaults.update(overrides)
    policy = AutoscalePolicy(**defaults)
    return PoolAutoscaler(
        policy, minimum=1, maximum=8, initial=2, max_batch=4, clock=clock
    )


class TestPoolAutoscaler:
    def test_grow_needs_sustained_high_utilization(self):
        clock = FakeClock()
        scaler = make_scaler(clock)
        assert scaler.observe(utilization=0.9, queue_depth=0) == 2  # streak 1
        assert scaler.observe(utilization=0.9, queue_depth=0) == 3  # streak 2
        assert scaler.scale_up_events == 1

    def test_single_high_batch_does_not_grow(self):
        clock = FakeClock()
        scaler = make_scaler(clock)
        scaler.observe(utilization=0.9, queue_depth=0)
        assert scaler.observe(utilization=0.5, queue_depth=0) == 2  # streak reset

    def test_cooldown_blocks_consecutive_events_until_time_passes(self):
        clock = FakeClock()
        scaler = make_scaler(clock)
        for _ in range(2):
            scaler.observe(utilization=1.0, queue_depth=0)
        assert scaler.size == 3
        # Still saturated, but inside the cooldown window: no event.
        for _ in range(5):
            assert scaler.observe(utilization=1.0, queue_depth=0) == 3
        clock.advance(10.0)
        for _ in range(2):
            scaler.observe(utilization=1.0, queue_depth=0)
        assert scaler.size == 4

    def test_shrink_when_idle_but_never_under_backlog(self):
        clock = FakeClock()
        scaler = make_scaler(clock)
        scaler.observe(utilization=0.0, queue_depth=0)
        # Second low batch, but the queue holds work: shrink refused.
        assert scaler.observe(utilization=0.0, queue_depth=5) == 2
        # Backlog cleared: the (still accumulated) streak shrinks the pool.
        assert scaler.observe(utilization=0.0, queue_depth=0) == 1
        assert scaler.scale_down_events == 1
        # Already at the floor: stays put forever.
        clock.advance(100.0)
        for _ in range(4):
            assert scaler.observe(utilization=0.0, queue_depth=0) == 1

    def test_burst_grow_jumps_to_max_before_the_batch(self):
        clock = FakeClock()
        scaler = make_scaler(clock)
        assert scaler.before_batch(queue_depth=7) == 2  # 7 < 2 * max_batch(4)
        assert scaler.before_batch(queue_depth=8) == 8  # jump to maximum
        assert scaler.burst_grow_events == 1
        assert scaler.scale_up_events == 1

    def test_burst_grow_respects_cooldown(self):
        clock = FakeClock()
        scaler = make_scaler(clock)
        for _ in range(2):
            scaler.observe(utilization=0.0, queue_depth=0)
        assert scaler.size == 1
        assert scaler.before_batch(queue_depth=50) == 1  # cooling down
        clock.advance(10.0)
        assert scaler.before_batch(queue_depth=50) == 8

    def test_no_grow_when_the_batch_is_predict_bound(self):
        clock = FakeClock()
        scaler = make_scaler(clock)
        for _ in range(4):
            size = scaler.observe(
                utilization=0.9,
                queue_depth=0,
                collect_seconds=0.1,
                predict_seconds=0.9,
            )
        assert size == 2  # more collect workers cannot help this workload

    def test_ewma_smooths_single_spikes(self):
        clock = FakeClock()
        scaler = make_scaler(clock, ewma_alpha=0.2, hysteresis_batches=1)
        # One saturated batch after a mid-band history: the EWMA stays in
        # the dead band, so even with hysteresis 1 nothing scales.
        scaler.observe(utilization=0.5, queue_depth=0)
        assert scaler.observe(utilization=1.0, queue_depth=0) == 2
        assert scaler.ewma == pytest.approx(0.6)

    def test_stats_dict_shape(self):
        scaler = make_scaler(FakeClock())
        stats = scaler.stats_dict()
        assert stats["pool_size"] == 2.0
        assert stats["pool_min"] == 1.0
        assert stats["pool_max"] == 8.0
        assert stats["scale_up_total"] == 0.0


#: One property-test step: (utilization, queue depth, clock advance).
TRACE_STEP = st.tuples(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.integers(min_value=0, max_value=64),
    st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
)


class TestAutoscalerProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        trace=st.lists(TRACE_STEP, min_size=1, max_size=40),
        minimum=st.integers(min_value=1, max_value=3),
        span=st.integers(min_value=0, max_value=6),
        cooldown=st.sampled_from([0.0, 5.0, 60.0]),
        hysteresis=st.integers(min_value=1, max_value=3),
    )
    def test_decisions_deterministic_bounded_and_cooldown_spaced(
        self, trace, minimum, span, cooldown, hysteresis
    ):
        maximum = minimum + span
        policy = AutoscalePolicy(
            cooldown_seconds=cooldown,
            hysteresis_batches=hysteresis,
            ewma_alpha=0.5,
        )

        def replay():
            clock = FakeClock()
            scaler = PoolAutoscaler(
                policy, minimum=minimum, maximum=maximum, max_batch=4, clock=clock
            )
            sizes = []
            events = []
            last = scaler.size
            for utilization, queue_depth, dt in trace:
                clock.advance(dt)
                pre = scaler.before_batch(queue_depth)
                post = scaler.observe(utilization=utilization, queue_depth=queue_depth)
                sizes.append((pre, post))
                for size in (pre, post):
                    if size != last:
                        events.append((clock.monotonic(), size))
                        last = size
            return sizes, events

        sizes, events = replay()
        sizes_again, _ = replay()
        # Deterministic: an identical trace replays to identical decisions.
        assert sizes == sizes_again
        # Bounded: every decision stays inside [minimum, maximum].
        for pre, post in sizes:
            assert minimum <= pre <= maximum
            assert minimum <= post <= maximum
        # Cooldown: consecutive scale events are spaced by >= cooldown.
        for (t1, _), (t2, _) in zip(events, events[1:]):
            assert t2 - t1 >= cooldown - 1e-9


# ---------------------------------------------------------- pool resize unit
class TestCollectionPoolResize:
    def test_serial_pool_refuses_resize(self):
        copilot = stu.build_stream_copilot(with_history=False)
        pool = CollectionPool(copilot.collection, workers=None)
        with pytest.raises(RuntimeError):
            pool.resize(2)

    def test_thread_grow_is_in_place_and_shrink_retires(self):
        copilot = stu.build_stream_copilot(with_history=False)
        with CollectionPool(copilot.collection, workers=2) as pool:
            alerts = [stu.make_stream_alert(i, alert_type=stu.IDLE_TYPE) for i in range(3)]
            ids = [copilot.collection.next_incident_id() for _ in alerts]
            assert all(result.ok for result in pool.run(alerts, ids))
            live = pool._executor
            assert live is not None
            pool.resize(4)  # grow: same executor, raised ceiling
            assert pool._executor is live
            assert pool.workers == 4
            pool.resize(1)  # shrink: executor retired, rebuilt lazily
            assert pool._executor is None
            assert pool._retired == [live]
            ids = [copilot.collection.next_incident_id() for _ in alerts]
            assert all(result.ok for result in pool.run(alerts, ids))
            assert pool.resize_events == 2
        assert pool._retired == []  # close() joined and dropped them

    def test_worker_seconds_accounts_capacity_not_usage(self):
        clock = FakeClock()
        copilot = stu.build_stream_copilot(with_history=False)
        stu.VIRTUAL_IO["clock"] = clock
        stu.VIRTUAL_IO["seconds"] = 0.05
        try:
            with CollectionPool(copilot.collection, workers=2, clock=clock) as pool:
                alerts = [stu.make_stream_alert(0, alert_type=stu.BUSY_TYPE)]
                ids = [copilot.collection.next_incident_id()]
                results = pool.run(alerts, ids)
                assert all(result.ok for result in results)
                # One 0.05s virtual collect on a 2-lane pool: 2 x 0.05
                # worker-seconds paid for 0.05 used.
                assert pool.worker_seconds == pytest.approx(0.10)
                assert results[0].seconds == pytest.approx(0.05)
        finally:
            stu.VIRTUAL_IO["clock"] = None


# ------------------------------------------------- end-to-end control loop
#: The autoscaled configuration under test, and the static pool sizes whose
#: reports it must reproduce exactly.
STATIC_SIZES = (1, 2, 3)


def control_loop_config(**overrides) -> IngestConfig:
    defaults = dict(
        max_batch=1,  # one collect task in flight at a time: exact timings
        max_latency_seconds=5.0,
        collect_workers_min=1,
        collect_workers_max=3,
        autoscale=AutoscalePolicy(
            high_utilization=0.45,
            low_utilization=0.2,
            ewma_alpha=1.0,
            hysteresis_batches=2,
            cooldown_seconds=0.0,
            burst_queue_factor=None,
        ),
    )
    defaults.update(overrides)
    return IngestConfig(**defaults)


@pytest.fixture()
def virtual_io_clock():
    clock = FakeClock()
    stu.VIRTUAL_IO["clock"] = clock
    stu.VIRTUAL_IO["seconds"] = 0.05
    yield clock
    stu.VIRTUAL_IO["clock"] = None


@pytest.fixture(scope="module")
def base_copilot() -> RCACopilot:
    return stu.build_stream_copilot(strict=True)


class TestControlLoopEndToEnd:
    def test_pool_grows_on_burst_and_shrinks_back_when_idle(
        self, base_copilot, virtual_io_clock
    ):
        """The acceptance trajectory, exact under the fake clock.

        Sustained collect-bound batches measure utilization 1/W (one 0.05s
        virtual-I/O task per batch on W lanes), so with thresholds at
        0.45/0.2 the pool steps 1 -> 2 -> 3 and parks; idle batches measure
        0.0 and walk it back down to the floor.
        """
        copilot = copy.deepcopy(base_copilot)
        ingestor = copilot.stream(control_loop_config(), clock=virtual_io_clock)
        busy = lambda i: stu.make_stream_alert(i, alert_type=stu.BUSY_TYPE)
        idle = lambda i: stu.make_stream_alert(i, alert_type=stu.IDLE_TYPE)
        try:
            assert ingestor.collect_pool_size == 1
            # Burst: utilization 1.0 at W=1; two batches satisfy hysteresis.
            ingestor.submit_many([busy(0), busy(1)])
            ingestor.flush()
            assert ingestor.collect_pool_size == 2
            # Utilization 0.5 >= 0.45 at W=2: two more batches grow again.
            ingestor.submit_many([busy(2), busy(3)])
            ingestor.flush()
            assert ingestor.collect_pool_size == 3
            # 1/3 < 0.45 at the ceiling: saturated burst holds steady.
            ingestor.submit_many([busy(4), busy(5), busy(6)])
            ingestor.flush()
            assert ingestor.collect_pool_size == 3
            # Idle traffic: utilization is exactly 0.0.  Shrink waits for an
            # empty queue, so a 4-alert flush shrinks once (last batch) ...
            ingestor.submit_many([idle(7), idle(8), idle(9), idle(10)])
            ingestor.flush()
            assert ingestor.collect_pool_size == 2
            # ... and (streaks reset on each event) two more idle batches
            # walk it back to the floor.
            ingestor.submit_many([idle(11), idle(12)])
            ingestor.flush()
            assert ingestor.collect_pool_size == 1
            flat = ingestor.stats_dict()
            assert flat["autoscale_pool_size"] == 1.0
            assert flat["autoscale_scale_up_total"] == 2.0
            assert flat["autoscale_scale_down_total"] == 2.0
            assert flat["autoscale_burst_grow_total"] == 0.0
            # The control loop's gauges reached the hub.
            names = copilot.hub.metrics.metric_names()
            for suffix in (
                "autoscale_pool_size",
                "autoscale_utilization_ewma",
                "autoscale_scale_up_total",
                "autoscale_scale_down_total",
                "collect_worker_seconds_total",
            ):
                assert f"rcacopilot.ingest.{suffix}" in names
            assert (
                copilot.hub.metrics.latest(
                    "rcacopilot.ingest.autoscale_pool_size", "stream-ingestor"
                )
                == 1.0
            )
        finally:
            ingestor.stop()

    def test_burst_grow_reacts_to_backlog_before_the_batch(
        self, base_copilot, virtual_io_clock
    ):
        copilot = copy.deepcopy(base_copilot)
        config = control_loop_config(
            max_batch=2,
            autoscale=AutoscalePolicy(
                high_utilization=0.45,
                low_utilization=0.2,
                ewma_alpha=1.0,
                hysteresis_batches=2,
                cooldown_seconds=0.0,
                burst_queue_factor=2.0,
            ),
        )
        ingestor = copilot.stream(config, clock=virtual_io_clock)
        try:
            # 10 queued alerts: the first batch dequeues 2, leaving a
            # backlog of 8 >= 2 * max_batch * 2 -- the pre-batch check jumps
            # straight to the ceiling before collection starts.
            ingestor.submit_many(
                [stu.make_stream_alert(i, alert_type=stu.BUSY_TYPE) for i in range(10)]
            )
            ingestor.flush()
            assert ingestor.collect_pool_size == 3
            flat = ingestor.stats_dict()
            assert flat["autoscale_burst_grow_total"] == 1.0
        finally:
            ingestor.stop()

    def test_reports_and_stats_match_every_static_pool_size(self, base_copilot):
        """Serial-vs-autoscaled parity: satellite requirement.

        The same alert stream (busy bursts, idle stretches, planted flaky
        failures) is replayed against static pools of every size in the
        autoscaler's range and against the autoscaled pool; reports,
        failures, post-feedback index state, and IngestStats must be
        value-identical everywhere.
        """
        spec = (
            [("busy", False)] * 4
            + [("flaky", True), ("idle", False)] * 2
            + [("busy", False)] * 3
            + [("idle", False)] * 4
        )
        type_map = {
            "busy": stu.BUSY_TYPE,
            "idle": stu.IDLE_TYPE,
            "flaky": stu.FLAKY_TYPE,
        }

        def make_alerts():
            return [
                stu.make_stream_alert(i, alert_type=type_map[kind], flaky=flaky)
                for i, (kind, flaky) in enumerate(spec)
            ]

        def run_variant(workers, autoscaled):
            clock = FakeClock()
            stu.VIRTUAL_IO["clock"] = clock
            stu.VIRTUAL_IO["seconds"] = 0.05
            try:
                copilot = copy.deepcopy(base_copilot)
                if autoscaled:
                    config = control_loop_config()
                else:
                    config = control_loop_config(
                        autoscale=None, collect_workers=workers
                    )
                ingestor = copilot.stream(config, clock=clock)
                try:
                    futures1 = ingestor.submit_many(make_alerts())
                    ingestor.flush()
                    reports1, failures1 = stu.drain_futures(futures1)
                    fed_ids = []
                    for position in sorted(reports1):
                        incident = futures1[position].result().incident
                        ingestor.record_feedback(
                            incident, f"ConfirmedCategory{position % 3}"
                        )
                        fed_ids.append(incident.incident_id)
                    futures2 = ingestor.submit_many(make_alerts())
                    ingestor.flush()
                    reports2, failures2 = stu.drain_futures(futures2)
                    return {
                        "reports1": reports1,
                        "failures1": failures1,
                        "reports2": reports2,
                        "failures2": failures2,
                        "index_state": stu.index_state(copilot, fed_ids),
                        "stats": ingestor.stats(),
                    }
                finally:
                    ingestor.stop()
            finally:
                stu.VIRTUAL_IO["clock"] = None

        baseline = run_variant(workers=1, autoscaled=False)
        for workers in STATIC_SIZES[1:]:
            assert run_variant(workers=workers, autoscaled=False) == baseline
        autoscaled = run_variant(workers=None, autoscaled=True)
        assert autoscaled == baseline
