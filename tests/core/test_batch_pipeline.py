"""Tests for the end-to-end batch path, the content caches and live feedback.

The refactor's central guarantee: ``predict_many`` / ``diagnose_many``
produce results identical to sequential per-incident calls — same labels,
same neighbour sets, same explanations.  On top of that, recurring incidents
must hit the content-hash summary/embedding caches, and OCE feedback must
reach the live index without a rebuild.
"""

from __future__ import annotations

import copy
from dataclasses import replace

import pytest

from repro.core import (
    CollectionConfig,
    CollectionStage,
    PredictionConfig,
    PredictionStage,
    RCACopilot,
)
from repro.datagen import generate_corpus
from repro.handlers import default_registry
from repro.llm import SimulatedLLM
from repro.telemetry import TelemetryHub


@pytest.fixture(scope="module")
def parity_setup():
    """An indexed stage plus a batch of test incidents with recurrences."""
    corpus = generate_corpus(
        total_incidents=90, total_categories=24, seed=77, duration_days=120.0
    )
    train, test = corpus.chronological_split(0.7)
    stage = PredictionStage(model=SimulatedLLM(), config=PredictionConfig())
    stage.index_history(train)
    bases = test.labelled()[:12]
    batch = []
    for occurrence in range(2):
        for index, base in enumerate(bases):
            batch.append(
                replace(
                    base,
                    incident_id=f"INC-LIVE-{occurrence:02d}-{index:03d}",
                    summary="",
                    predicted_category=None,
                    explanation="",
                )
            )
    return stage, batch


class TestBatchSequentialParity:
    def test_predict_many_matches_sequential_predict(self, parity_setup):
        stage, batch = parity_setup
        sequential_stage = copy.deepcopy(stage)
        batch_stage = copy.deepcopy(stage)
        sequential_incidents = copy.deepcopy(batch)
        batch_incidents = copy.deepcopy(batch)

        sequential = [sequential_stage.predict(i) for i in sequential_incidents]
        batched = batch_stage.predict_many(batch_incidents)

        assert [o.label for o in batched] == [o.label for o in sequential]
        assert [[n.incident_id for n in o.neighbors] for o in batched] == [
            [n.incident_id for n in o.neighbors] for o in sequential
        ]
        for batched_outcome, sequential_outcome in zip(batched, sequential):
            assert [n.similarity for n in batched_outcome.neighbors] == pytest.approx(
                [n.similarity for n in sequential_outcome.neighbors]
            )
        assert [o.prediction.explanation for o in batched] == [
            o.prediction.explanation for o in sequential
        ]
        assert [o.summary for o in batched] == [o.summary for o in sequential]

    def test_diagnose_many_matches_sequential_diagnose(self, parity_setup):
        stage, batch = parity_setup
        del stage

        def build_copilot():
            copilot = RCACopilot(TelemetryHub(), registry=default_registry())
            history = generate_corpus(
                total_incidents=90, total_categories=24, seed=77, duration_days=120.0
            ).chronological_split(0.7)[0]
            copilot.index_history(history)
            return copilot

        sequential_copilot = build_copilot()
        batch_copilot = build_copilot()
        sequential_incidents = copy.deepcopy(batch)
        batch_incidents = copy.deepcopy(batch)

        sequential = [sequential_copilot.diagnose(i) for i in sequential_incidents]
        batched = batch_copilot.diagnose_many(batch_incidents)

        assert [r.predicted_label for r in batched] == [
            r.predicted_label for r in sequential
        ]
        assert [
            [n.incident_id for n in r.prediction.neighbors] for r in batched
        ] == [[n.incident_id for n in r.prediction.neighbors] for r in sequential]

    def test_empty_batch(self, parity_setup):
        stage, _ = parity_setup
        assert stage.predict_many([]) == []
        copilot = RCACopilot(TelemetryHub())
        assert copilot.diagnose_many([]) == []


class TestContentCaches:
    def test_recurring_incidents_hit_caches(self, parity_setup):
        stage, batch = parity_setup
        stage = copy.deepcopy(stage)
        incidents = copy.deepcopy(batch)
        baseline = copy.deepcopy(stage.cache_stats)
        stage.predict_many(incidents)
        stats = stage.cache_stats
        # 12 distinct diagnostics repeated twice: the second occurrence of
        # each must hit both caches (index-time entries may add more hits).
        assert stats.embedding_hits - baseline.embedding_hits >= 12
        assert stats.summary_hits - baseline.summary_hits >= 12
        new_embedding_misses = stats.embedding_misses - baseline.embedding_misses
        assert new_embedding_misses <= 12

    def test_sequential_recurrence_hits_caches_too(self, parity_setup):
        stage, batch = parity_setup
        stage = copy.deepcopy(stage)
        first, second = copy.deepcopy(batch[0]), copy.deepcopy(batch[12])
        assert first.diagnostic_info() == second.diagnostic_info()
        stage.predict(first)
        before = copy.deepcopy(stage.cache_stats)
        stage.predict(second)
        assert stage.cache_stats.embedding_hits == before.embedding_hits + 1
        assert stage.cache_stats.embedding_misses == before.embedding_misses

    def test_cache_metrics_exported_through_hub(self, parity_setup):
        _, batch = parity_setup
        hub = TelemetryHub()
        copilot = RCACopilot(hub, registry=default_registry())
        history = generate_corpus(
            total_incidents=60, total_categories=18, seed=5, duration_days=90.0
        )
        copilot.index_history(history)
        copilot.diagnose_many(copy.deepcopy(batch[:4]))
        names = hub.metrics.metric_names()
        for suffix in (
            "summary_hits",
            "summary_misses",
            "embedding_hits",
            "embedding_misses",
        ):
            assert f"rcacopilot.cache.{suffix}" in names
        latest = hub.metrics.latest("rcacopilot.cache.embedding_misses", "prediction-stage")
        assert latest is not None and latest >= 0.0


class TestLiveFeedback:
    def _copilot(self):
        copilot = RCACopilot(TelemetryHub(), registry=default_registry())
        history = generate_corpus(
            total_incidents=60, total_categories=18, seed=5, duration_days=90.0
        )
        copilot.index_history(history)
        return copilot

    def test_feedback_adds_new_incident_to_live_index(self, parity_setup):
        _, batch = parity_setup
        copilot = self._copilot()
        incident = copy.deepcopy(batch[0])
        copilot.diagnose(incident)
        assert incident.incident_id not in copilot.prediction.vector_store
        copilot.record_feedback(incident, "ConfirmedCategory")
        assert incident.incident_id in copilot.prediction.vector_store
        entry = copilot.prediction.vector_store.get(incident.incident_id)
        assert entry.category == "ConfirmedCategory"

    def test_feedback_corrects_indexed_category_in_place(self, parity_setup):
        _, batch = parity_setup
        copilot = self._copilot()
        incident = copy.deepcopy(batch[1])
        copilot.diagnose(incident)
        copilot.record_feedback(incident, "FirstLabel")
        copilot.record_feedback(incident, "CorrectedLabel")
        entry = copilot.prediction.vector_store.get(incident.incident_id)
        assert entry.category == "CorrectedLabel"
        assert copilot.history.get(incident.incident_id).category == "CorrectedLabel"

    def test_feedback_makes_incident_retrievable(self, parity_setup):
        _, batch = parity_setup
        copilot = self._copilot()
        incident = copy.deepcopy(batch[2])
        copilot.diagnose(incident)
        copilot.record_feedback(incident, "FeedbackCategory")
        recurrence = replace(
            copy.deepcopy(incident),
            incident_id="INC-LIVE-RECUR-001",
            category=None,
            summary="",
        )
        report = copilot.diagnose(recurrence)
        neighbor_ids = [n.incident_id for n in report.prediction.neighbors]
        assert incident.incident_id in neighbor_ids


class TestOwningTeamConfig:
    def test_default_owning_team_from_config(self, warm_service, registry):
        stage = CollectionStage(
            registry,
            warm_service.hub,
            CollectionConfig(default_owning_team="Storage"),
        )
        outcome = warm_service.inject_and_detect("FullDisk")
        incident = stage.parse_alert(outcome.primary_alert)
        assert incident.owning_team == "Storage"
        # An explicit argument still wins over the configured default.
        override = stage.parse_alert(outcome.primary_alert, owning_team="Networking")
        assert override.owning_team == "Networking"

    def test_copilot_observe_uses_configured_team(self, warm_service):
        from repro.core import PipelineConfig

        config = PipelineConfig(
            collection=CollectionConfig(default_owning_team="Directory")
        )
        copilot = RCACopilot(warm_service.hub, config=config)
        outcome = warm_service.inject_and_detect("DeliveryHang")
        report = copilot.observe(outcome.primary_alert)
        assert report.incident.owning_team == "Directory"
