"""Unit tests for the collection worker pool behind the stream ingestor.

Covers the pool's execution contract directly, without the ingestion front:
submission-order folding, serial/thread/process equivalence, per-item crash
containment (a raising handler fails only its own slot and the pool survives
the next wave), process-safe handler serialization, the handler rebuild
cache, and the executor wall-clock budget.
"""

from __future__ import annotations

import os

import pytest

import streamtest_utils as stu
from repro.core import (
    CollectionConfig,
    CollectionPool,
    CollectionStage,
    CollectionError,
    IngestConfig,
)
from repro.handlers import (
    HandlerCache,
    HandlerRegistry,
    QueryAction,
    SerializationError,
    handler_to_dict,
    linear_handler,
    register_classifier,
)
from repro.monitors import Alert, AlertScope
from repro.telemetry import TelemetryHub


#: Registered at import time (in the parent), so forked pool workers
#: inherit it and serialized handlers can reference it by name.
@register_classifier("collect_pool_worker_kill")
def _worker_kill_classifier(context, table) -> str:
    if "kill-worker" in context.incident.alert_message:
        os._exit(13)  # simulate an OOM kill / native crash of the worker
    return "default"


def build_stage(strict: bool = True, registry=None, wall_budget=None) -> CollectionStage:
    hub = TelemetryHub()
    stu.seed_hub(hub)
    return CollectionStage(
        registry if registry is not None else stu.stream_test_registry(),
        hub,
        CollectionConfig(strict=strict, handler_wall_budget_seconds=wall_budget),
    )


def reserved_ids(stage: CollectionStage, count: int):
    return [stage.next_incident_id() for _ in range(count)]


def outcome_fingerprint(result):
    outcome = result.outcome
    execution = outcome.execution
    return (
        result.index,
        result.incident.incident_id,
        outcome.matched_handler,
        tuple(step.node_id for step in execution.steps) if execution else (),
        tuple(sorted(result.incident.action_output.items())),
        result.incident.diagnostic.render() if result.incident.diagnostic else "",
    )


class TestBackendEquivalence:
    def test_all_backends_fold_identically(self):
        alerts = [
            stu.make_stream_alert(i, alert_type=t)
            for i, t in enumerate([stu.SLEEPY_TYPE, stu.FLAKY_TYPE] * 3)
        ]
        baselines = None
        for workers, backend in ((None, "thread"), (3, "thread"), (2, "process")):
            stage = build_stage()
            pool = CollectionPool(stage, workers=workers, backend=backend)
            with pool:
                results = pool.run(alerts, reserved_ids(stage, len(alerts)))
            assert all(r.ok for r in results)
            fingerprints = [outcome_fingerprint(r) for r in results]
            if baselines is None:
                baselines = fingerprints
            else:
                assert fingerprints == baselines

    def test_results_come_back_in_submission_order(self):
        stage = build_stage()
        alerts = [stu.make_stream_alert(i) for i in range(10)]
        ids = reserved_ids(stage, len(alerts))
        pool = CollectionPool(stage, workers=4, backend="thread")
        with pool:
            results = pool.run(alerts, ids)
        assert [r.index for r in results] == list(range(10))
        assert [r.incident.incident_id for r in results] == ids
        assert all(r.seconds >= 0.0 for r in results)

    def test_id_count_mismatch_rejected(self):
        stage = build_stage()
        pool = CollectionPool(stage)
        with pytest.raises(ValueError):
            pool.run([stu.make_stream_alert(0)], [])

    def test_invalid_pool_parameters_rejected(self):
        stage = build_stage()
        with pytest.raises(ValueError):
            CollectionPool(stage, workers=0)
        with pytest.raises(ValueError):
            CollectionPool(stage, backend="fiber")
        with pytest.raises(ValueError):
            IngestConfig(collect_workers=0)
        with pytest.raises(ValueError):
            IngestConfig(collect_backend="fiber")
        with pytest.raises(ValueError):
            CollectionConfig(handler_wall_budget_seconds=0.0)
        with pytest.raises(ValueError):
            CollectionConfig(lookback_seconds=0.0)


class TestCrashContainment:
    @pytest.mark.parametrize(
        "workers,backend", [(None, "thread"), (4, "thread"), (2, "process")]
    )
    def test_failure_hits_only_its_slot_and_pool_survives(self, workers, backend):
        stage = build_stage(strict=True)
        flaky_positions = {1, 4}
        alerts = [
            stu.make_stream_alert(
                i, alert_type=stu.FLAKY_TYPE, flaky=(i in flaky_positions)
            )
            for i in range(6)
        ]
        pool = CollectionPool(stage, workers=workers, backend=backend)
        with pool:
            results = pool.run(alerts, reserved_ids(stage, len(alerts)))
            assert {r.index for r in results if not r.ok} == flaky_positions
            for result in results:
                if result.ok:
                    assert result.outcome.matched_handler == "stream-flaky"
                else:
                    assert isinstance(result.error, CollectionError)
                    assert "simulated telemetry outage" in str(result.error)
            # The pool is still fully operational for the next wave.
            second = [stu.make_stream_alert(100 + i) for i in range(4)]
            wave2 = pool.run(second, reserved_ids(stage, len(second)))
            assert all(r.ok for r in wave2)

    def test_dead_worker_process_breaks_wave_but_pool_recovers(self):
        """A worker dying outright fails its wave; the next wave gets a fresh pool."""
        registry = stu.stream_test_registry()
        registry.register(
            linear_handler(
                "StreamKiller",
                "stream-killer",
                [
                    QueryAction(
                        "maybe_kill",
                        source="events",
                        classify=_worker_kill_classifier,
                    )
                ],
            )
        )
        stage = build_stage(registry=registry)
        killer = Alert(
            alert_id="AL-KILL-00001",
            alert_type="StreamKiller",
            scope=AlertScope.FOREST,
            timestamp=3600.0,
            machine="",
            forest="forest-01",
            message="please kill-worker now",
            severity=3,
        )
        pool = CollectionPool(stage, workers=2, backend="process")
        with pool:
            wave1 = pool.run(
                [killer, stu.make_stream_alert(1)], reserved_ids(stage, 2)
            )
            assert not wave1[0].ok  # the killed worker's own alert always fails
            # The broken executor must have been discarded: the next wave
            # runs on a fresh pool and succeeds end to end.
            second = [stu.make_stream_alert(10 + i) for i in range(3)]
            ids = reserved_ids(stage, len(second))
            wave2 = pool.run(second, ids)
            assert all(r.ok for r in wave2)
            assert [r.incident.incident_id for r in wave2] == ids

    def test_nonstrict_mode_degrades_instead_of_failing(self):
        stage = build_stage(strict=False)
        alerts = [stu.make_stream_alert(0, alert_type=stu.FLAKY_TYPE, flaky=True)]
        pool = CollectionPool(stage, workers=2, backend="thread")
        with pool:
            results = pool.run(alerts, reserved_ids(stage, 1))
        assert results[0].ok
        assert results[0].outcome.matched_handler == "stream-flaky"
        assert results[0].outcome.execution is None

    def test_wall_budget_overrun_contained_per_item(self):
        # The sleepy handler's first step sleeps past the 1ms budget, so the
        # budget check trips at the next node boundary; the flaky-type alert
        # (not flagged flaky) runs fast handlers and stays under budget.
        stage = build_stage(strict=True, wall_budget=0.001)
        alerts = [
            stu.make_stream_alert(0, alert_type=stu.SLEEPY_TYPE),
            stu.make_stream_alert(1, alert_type=stu.FLAKY_TYPE),
        ]
        pool = CollectionPool(stage, workers=2, backend="thread")
        with pool:
            results = pool.run(alerts, reserved_ids(stage, 2))
        assert not results[0].ok
        assert "wall-clock budget" in str(results[0].error)
        assert results[1].ok


class TestProcessSerialization:
    def test_script_handler_fails_per_item_on_process_backend(self):
        registry = stu.stream_test_registry()
        registry.register(
            linear_handler(
                "StreamScripted",
                "stream-scripted",
                [QueryAction("run_tool", source="script", script=lambda ctx: {"x": "1"})],
            )
        )
        stage = build_stage(registry=registry)
        alerts = [
            stu.make_stream_alert(0, alert_type="StreamScripted"),
            stu.make_stream_alert(1, alert_type=stu.SLEEPY_TYPE),
        ]
        pool = CollectionPool(stage, workers=2, backend="process")
        with pool:
            results = pool.run(alerts, reserved_ids(stage, 2))
        assert not results[0].ok
        assert isinstance(results[0].error, SerializationError)
        assert results[1].ok
        # The same handler is fine on the thread backend (no serialization).
        thread_stage = build_stage(registry=registry)
        thread_pool = CollectionPool(thread_stage, workers=2, backend="thread")
        with thread_pool:
            thread_results = thread_pool.run(alerts, reserved_ids(thread_stage, 2))
        assert all(r.ok for r in thread_results)

    def test_hub_blob_created_once_reused_and_destroyed(self):
        """The (hub, config) snapshot is one shared segment per pool life.

        Created lazily with the first process executor, reused verbatim by
        executors rebuilt after a discard (crash / resize path), and
        unlinked by close() so /dev/shm is left clean.
        """
        stage = build_stage()
        pool = CollectionPool(stage, workers=2, backend="process")
        assert pool._hub_blob is None  # noqa: SLF001 - lazy
        with pool:
            alerts = [stu.make_stream_alert(i) for i in range(2)]
            results = pool.run(alerts, reserved_ids(stage, 2))
            assert all(r.ok for r in results)
            blob = pool._hub_blob  # noqa: SLF001
            assert blob is not None
            # Rebuild the executor: the snapshot segment is reused, not
            # re-pickled.
            pool._discard_executor()  # noqa: SLF001
            more = [stu.make_stream_alert(10 + i) for i in range(2)]
            results = pool.run(more, reserved_ids(stage, 2))
            assert all(r.ok for r in results)
            assert pool._hub_blob is blob  # noqa: SLF001
        assert pool._hub_blob is None  # noqa: SLF001 - destroyed by close()
        import os

        if os.path.isdir("/dev/shm"):
            assert blob.spec.name not in os.listdir("/dev/shm")

    def test_handler_cache_rebuilds_once_per_version(self):
        handler = stu.stream_test_registry().match(stu.SLEEPY_TYPE)
        doc = handler_to_dict(handler)
        cache = HandlerCache()
        first = cache.resolve(doc)
        second = cache.resolve(doc)
        assert first is second
        assert len(cache) == 1
        assert cache.resolve(None) is None
        bumped = dict(doc, version=99)
        assert cache.resolve(bumped) is not first
        assert len(cache) == 2

    def test_no_handler_behaviour_matches_across_backends(self):
        # An alert type with no registered handler degrades (non-strict) the
        # same way whether the miss happens in the parent or in a worker.
        registry = HandlerRegistry()
        for workers, backend in ((None, "thread"), (2, "process")):
            stage = CollectionStage(registry, TelemetryHub(), CollectionConfig(strict=False))
            pool = CollectionPool(stage, workers=workers, backend=backend)
            with pool:
                results = pool.run(
                    [stu.make_stream_alert(0)], reserved_ids(stage, 1)
                )
            assert results[0].ok
            assert results[0].outcome.matched_handler is None
            assert results[0].outcome.execution is None
