"""Tests for the pipeline configuration, collection stage and prediction stage."""

from __future__ import annotations

import pytest

from repro.cloudsim import TransportService
from repro.core import (
    CollectionConfig,
    CollectionStage,
    ContextSource,
    NoHandlerError,
    NotFittedError,
    PipelineConfig,
    PredictionConfig,
    PredictionStage,
    RCACopilot,
)
from repro.datagen import generate_corpus
from repro.handlers import HandlerRegistry, default_registry
from repro.incidents import IncidentStore
from repro.llm import SimulatedLLM
from repro.telemetry import TelemetryHub


class TestConfig:
    def test_defaults_match_paper(self):
        config = PredictionConfig()
        assert config.k == 5
        assert config.alpha == pytest.approx(0.3)
        assert config.summarize is True
        assert config.context_sources == (ContextSource.SUMMARIZED_DIAGNOSTIC_INFO,)

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionConfig(k=0)
        with pytest.raises(ValueError):
            PredictionConfig(alpha=-0.1)
        with pytest.raises(ValueError):
            PredictionConfig(context_sources=())
        with pytest.raises(ValueError):
            PipelineConfig(embedding_backend="word2vec")


class TestCollectionStage:
    def _alert(self, service):
        outcome = service.inject_and_detect("FullDisk")
        assert outcome.primary_alert is not None
        return outcome.primary_alert

    def test_handle_alert_collects(self, warm_service, registry):
        stage = CollectionStage(registry, warm_service.hub)
        alert = self._alert(warm_service)
        outcome = stage.handle_alert(alert)
        assert outcome.collected
        assert outcome.matched_handler
        assert outcome.incident.incident_id.startswith("INC-")

    def test_unmatched_alert_type_degrades(self, warm_service):
        stage = CollectionStage(HandlerRegistry(), warm_service.hub)
        alert = self._alert(warm_service)
        outcome = stage.handle_alert(alert)
        assert not outcome.collected
        assert outcome.matched_handler is None

    def test_unmatched_alert_type_strict_raises(self, warm_service):
        stage = CollectionStage(
            HandlerRegistry(), warm_service.hub, CollectionConfig(strict=True)
        )
        alert = self._alert(warm_service)
        with pytest.raises(NoHandlerError):
            stage.handle_alert(alert)

    def test_incident_ids_unique(self, warm_service, registry):
        stage = CollectionStage(registry, warm_service.hub)
        alert = self._alert(warm_service)
        a = stage.parse_alert(alert)
        b = stage.parse_alert(alert)
        assert a.incident_id != b.incident_id


@pytest.fixture(scope="module")
def fitted_stage():
    """A prediction stage indexed over a small training corpus."""
    store = generate_corpus(
        total_incidents=70, total_categories=20, seed=31, duration_days=90.0
    )
    train, test = store.chronological_split(0.75)
    stage = PredictionStage(model=SimulatedLLM(), config=PredictionConfig())
    stage.index_history(train)
    return stage, train, test


class TestPredictionStage:
    def test_requires_indexing(self):
        stage = PredictionStage(model=SimulatedLLM())
        with pytest.raises(NotFittedError):
            stage.retrieve(next(iter(generate_corpus(20, 11, seed=1, duration_days=30))))
        with pytest.raises(NotFittedError):
            stage.index_history(IncidentStore())

    def test_retrieval_returns_diverse_categories(self, fitted_stage):
        stage, train, test = fitted_stage
        incident = test.all()[0]
        demos = stage.retrieve(incident)
        categories = [d.category for d in demos]
        assert len(demos) <= stage.config.k
        assert len(set(categories)) == len(categories)

    def test_predict_sets_prediction_on_incident(self, fitted_stage):
        stage, train, test = fitted_stage
        incident = test.all()[0]
        outcome = stage.predict(incident)
        assert outcome.label
        assert incident.predicted_category == outcome.label
        assert outcome.elapsed_seconds >= 0.0

    def test_summaries_respect_budget(self, fitted_stage):
        stage, train, _ = fitted_stage
        for incident in train.all()[:10]:
            assert len(incident.summary.split()) <= stage.config.summary_max_words

    def test_build_context_sources(self, fitted_stage):
        stage, _, test = fitted_stage
        incident = test.all()[0]
        stage.config.context_sources = (ContextSource.ALERT_INFO,)
        assert "AlertType" in stage.build_context(incident)
        stage.config.context_sources = (ContextSource.ACTION_OUTPUT,)
        assert "mitigation.suggested" in stage.build_context(incident)
        stage.config.context_sources = (ContextSource.SUMMARIZED_DIAGNOSTIC_INFO,)

    def test_add_to_index_requires_label(self, fitted_stage):
        stage, _, test = fitted_stage
        incident = test.all()[1]
        label = incident.category
        incident.category = None
        with pytest.raises(ValueError):
            stage.add_to_index(incident)
        incident.category = label
        before = len(stage.vector_store)
        stage.add_to_index(incident)
        assert len(stage.vector_store) == before + 1
        # Adding twice is a no-op.
        stage.add_to_index(incident)
        assert len(stage.vector_store) == before + 1


class TestRCACopilotPipeline:
    def test_observe_end_to_end(self):
        service = TransportService(seed=55)
        service.warm_up(hours=0.5)
        copilot = RCACopilot(service.hub)
        history = generate_corpus(
            total_incidents=60, total_categories=18, seed=8, duration_days=80.0
        )
        copilot.index_history(history)
        outcome = service.inject_and_detect("HubPortExhaustion")
        report = copilot.observe(outcome.primary_alert)
        assert report.collection.collected
        assert report.predicted_label
        assert "Predicted root cause category" in report.render()

    def test_diagnose_without_history(self, warm_service):
        copilot = RCACopilot(warm_service.hub)
        outcome = warm_service.inject_and_detect("FullDisk")
        report = copilot.observe(outcome.primary_alert)
        assert report.prediction is None
        assert report.predicted_label == "Unknown"

    def test_record_feedback_relabels(self, warm_service):
        copilot = RCACopilot(warm_service.hub)
        outcome = warm_service.inject_and_detect("DeliveryHang")
        report = copilot.observe(outcome.primary_alert)
        copilot.record_feedback(report.incident, "DeliveryHang")
        assert copilot.history.get(report.incident.incident_id).category == "DeliveryHang"
