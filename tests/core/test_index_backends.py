"""Flat vs. sharded retrieval through the full prediction stage.

The acceptance contract of the retrieval refactor: on the seed corpus, a
prediction stage configured with the sharded index produces *identical*
predictions and neighbour sets to one configured with the flat index —
sharding is a layout/performance choice, never a quality choice.
"""

from __future__ import annotations

import copy

import pytest

from repro.core import (
    IndexConfig,
    PredictionConfig,
    PredictionStage,
    RCACopilot,
    PipelineConfig,
    select_window_days,
)
from repro.llm import SimulatedLLM
from repro.telemetry import TelemetryHub
from repro.vectordb import CompactionPolicy, FlatVectorIndex, ShardedVectorIndex


def build_stage(backend, corpus_split, window_days=20.0):
    train, _ = corpus_split
    stage = PredictionStage(
        model=SimulatedLLM(),
        config=PredictionConfig(),
        index_config=IndexConfig(backend=backend, window_days=window_days),
    )
    stage.index_history(train)
    return stage


class TestSeedCorpusParity:
    def test_index_backend_selected_from_config(self, corpus_split):
        flat_stage = build_stage("flat", corpus_split)
        sharded_stage = build_stage("sharded", corpus_split)
        assert isinstance(flat_stage.index, FlatVectorIndex)
        assert isinstance(sharded_stage.index, ShardedVectorIndex)
        # The compatibility alias keeps pointing at the live index.
        assert flat_stage.vector_store is flat_stage.index
        assert len(sharded_stage.index) == len(flat_stage.index)

    def test_identical_predictions_and_neighbors(self, corpus_split):
        """Same labels, same neighbour ids, same similarity scores."""
        _, test = corpus_split
        flat_stage = build_stage("flat", corpus_split)
        sharded_stage = build_stage("sharded", corpus_split)
        incidents = test.labelled()
        flat_outcomes = flat_stage.predict_many(copy.deepcopy(incidents))
        sharded_outcomes = sharded_stage.predict_many(copy.deepcopy(incidents))
        assert [o.label for o in flat_outcomes] == [o.label for o in sharded_outcomes]
        for flat_outcome, sharded_outcome in zip(flat_outcomes, sharded_outcomes):
            assert [n.incident_id for n in flat_outcome.neighbors] == [
                n.incident_id for n in sharded_outcome.neighbors
            ]
            assert [n.similarity for n in sharded_outcome.neighbors] == pytest.approx(
                [n.similarity for n in flat_outcome.neighbors]
            )

    def test_retrieval_parity_with_lookahead_cutoff(self, corpus_split):
        _, test = corpus_split
        flat_stage = build_stage("flat", corpus_split)
        sharded_stage = build_stage("sharded", corpus_split, window_days=10.0)
        incidents = test.labelled()[:10]
        cutoff = incidents[0].created_day
        flat_lists = flat_stage.retrieve_many(incidents, history_before_day=cutoff)
        sharded_lists = sharded_stage.retrieve_many(incidents, history_before_day=cutoff)
        assert [
            [n.incident_id for n in demonstrations] for demonstrations in flat_lists
        ] == [[n.incident_id for n in demonstrations] for demonstrations in sharded_lists]

    def test_feedback_parity_after_updates(self, corpus_split):
        """add_to_index + update_category keep the two backends in lockstep."""
        _, test = corpus_split
        flat_stage = build_stage("flat", corpus_split)
        sharded_stage = build_stage("sharded", corpus_split)
        extra = test.labelled()[:6]
        for incident in extra:
            flat_stage.add_to_index(incident)
            sharded_stage.add_to_index(incident)
        flat_stage.update_category(extra[0].incident_id, "Rewritten")
        sharded_stage.update_category(extra[0].incident_id, "Rewritten")
        probes = test.labelled()[6:16]
        flat_lists = flat_stage.retrieve_many(copy.deepcopy(probes))
        sharded_lists = sharded_stage.retrieve_many(copy.deepcopy(probes))
        assert [
            [n.incident_id for n in demonstrations] for demonstrations in flat_lists
        ] == [[n.incident_id for n in demonstrations] for demonstrations in sharded_lists]

    @pytest.mark.parametrize("backend", ["flat", "sharded"])
    def test_update_category_unknown_id_fails_loudly(self, corpus_split, backend):
        stage = build_stage(backend, corpus_split)
        with pytest.raises(KeyError, match="INC-NOT-THERE"):
            stage.update_category("INC-NOT-THERE", "Whatever")


class TestShardedByDefault:
    """The sharded index is the default fast path for every workload."""

    def test_default_config_selects_sharded_with_auto_window(self, corpus_split):
        from repro.incidents import IncidentStore

        train, _ = corpus_split
        assert IndexConfig().backend == "sharded"
        assert IndexConfig().window_days is None
        stage = PredictionStage(model=SimulatedLLM(), config=PredictionConfig())
        stage.index_history(train)
        assert isinstance(stage.index, ShardedVectorIndex)
        # The window is sized for the *labelled* subset — what gets indexed.
        assert stage.resolved_window_days == select_window_days(
            IncidentStore(train.labelled())
        )
        assert stage.index.window_days == stage.resolved_window_days

    def test_auto_window_targets_median_shard_size(self, corpus_split):
        train, _ = corpus_split
        window = select_window_days(train)
        counts = sorted(train.shard_counts(window).values())
        assert counts[len(counts) // 2] <= 2048
        assert window >= 1.0
        # An explicit window always wins over the automatic choice.
        stage = PredictionStage(
            model=SimulatedLLM(),
            config=PredictionConfig(),
            index_config=IndexConfig(backend="sharded", window_days=20.0),
        )
        stage.index_history(train)
        assert stage.resolved_window_days == 20.0

    def test_auto_window_choice_is_logged_through_hub(self, small_corpus):
        hub = TelemetryHub()
        copilot = RCACopilot(hub)
        train, _ = small_corpus.chronological_split(0.75)
        copilot.index_history(train)
        value = hub.metrics.latest(
            "rcacopilot.index.window_days_auto", "prediction-stage"
        )
        assert value is not None and value >= 1.0
        assert any(
            "auto-selected window_days" in record.message for record in hub.logs
        )

    def test_index_config_passes_workers_and_compaction_through(self, corpus_split):
        train, _ = corpus_split
        policy = CompactionPolicy(min_entries=10, max_entries=50, auto=True)
        stage = PredictionStage(
            model=SimulatedLLM(),
            config=PredictionConfig(),
            index_config=IndexConfig(
                backend="sharded", window_days=15.0, max_workers=2, compaction=policy
            ),
        )
        stage.index_history(train)
        assert stage.index.max_workers == 2
        assert stage.index.compaction is policy
        assert stage.index.stats()["max_workers"] == 2.0


class TestShardKeyExtraction:
    def test_shard_key_matches_vectordb_bucketing(self, small_corpus):
        """incidents.shard_key must stay formula-identical to time_bucket."""
        from repro.incidents import shard_key
        from repro.vectordb import time_bucket

        for incident in small_corpus:
            for window in (7.0, 15.0, 30.0):
                assert shard_key(incident, window) == time_bucket(
                    incident.created_day, window
                )
        with pytest.raises(ValueError):
            shard_key(small_corpus.all()[0], 0.0)

    def test_shard_counts_previews_index_layout(self, corpus_split):
        """shard_counts on the history matches the built sharded index."""
        train, _ = corpus_split
        stage = build_stage("sharded", corpus_split, window_days=20.0)
        labelled = train.labelled()
        expected = {}
        from repro.incidents import shard_key

        for incident in labelled:
            key = shard_key(incident, 20.0)
            expected[key] = expected.get(key, 0) + 1
        assert stage.index.shard_sizes() == expected
        counts = train.shard_counts(20.0)
        assert sum(counts.values()) == len(train.all())
        assert list(counts) == sorted(counts)


class TestIndexTelemetry:
    def test_index_metrics_exported_through_hub(self, small_corpus):
        hub = TelemetryHub()
        config = PipelineConfig(index=IndexConfig(backend="sharded", window_days=20.0))
        copilot = RCACopilot(hub, config=config)
        train, test = small_corpus.chronological_split(0.75)
        copilot.index_history(train)
        copilot.diagnose_many(copy.deepcopy(test.labelled()[:4]))
        names = hub.metrics.metric_names()
        for suffix in (
            "entries",
            "shard_count",
            "scanned_shard_ratio",
            "max_shard_size",
            "median_shard_size",
            "max_workers",
            "compactions",
        ):
            assert f"rcacopilot.index.{suffix}" in names
        shard_count = hub.metrics.latest("rcacopilot.index.shard_count", "prediction-stage")
        assert shard_count is not None and shard_count > 1.0

    def test_invalid_index_config_rejected(self):
        with pytest.raises(ValueError):
            IndexConfig(backend="faiss")
        with pytest.raises(ValueError):
            IndexConfig(window_days=-1.0)
