"""Tests for the streaming micro-batch ingestion front.

Covers the new ingestion contract: a continuous alert stream is grouped
into ``observe_many`` micro-batches automatically (size- and latency-bound
flushes, bounded queue with backpressure or load-shed), results flow back
through futures, queue/flush statistics reach the telemetry hub, and OCE
feedback recorded mid-stream is visible to the very next micro-batch on
both index backends.
"""

from __future__ import annotations

import copy

import pytest

import streamtest_utils as stu
from repro.cloudsim import TransportService
from repro.core import (
    IndexConfig,
    IngestConfig,
    IngestQueueFull,
    PipelineConfig,
    RCACopilot,
    StreamIngestor,
)
from repro.datagen import generate_corpus


FAULTS = ("HubPortExhaustion", "DeliveryHang", "FullDisk", "CodeRegression")


@pytest.fixture(scope="module")
def stream_service():
    service = TransportService(seed=404)
    service.warm_up(hours=1.0)
    return service


@pytest.fixture(scope="module")
def alert_feed(stream_service):
    """A deterministic list of real monitor alerts to replay through ingestors."""
    alerts = []
    for round_index in range(3):
        for fault in FAULTS:
            outcome = stream_service.inject_and_detect(fault)
            if outcome.primary_alert is not None:
                alerts.append(outcome.primary_alert)
    assert len(alerts) >= 6
    return alerts


def build_copilot(stream_service, backend="flat"):
    config = PipelineConfig(index=IndexConfig(backend=backend, window_days=20.0))
    copilot = RCACopilot(stream_service.hub, config=config)
    history = generate_corpus(
        total_incidents=60, total_categories=18, seed=5, duration_days=90.0
    )
    copilot.index_history(history)
    return copilot


class TestManualFlush:
    def test_flush_matches_observe_many(self, stream_service, alert_feed):
        streamed = build_copilot(stream_service)
        direct = build_copilot(stream_service)
        ingestor = streamed.stream(IngestConfig(max_batch=64, max_latency_seconds=1.0))
        futures = ingestor.submit_many(alert_feed[:6])
        reports = ingestor.flush()
        expected = direct.observe_many(alert_feed[:6])
        assert [r.predicted_label for r in reports] == [
            r.predicted_label for r in expected
        ]
        assert all(future.done() for future in futures)
        assert [future.result().predicted_label for future in futures] == [
            r.predicted_label for r in expected
        ]

    def test_flush_respects_max_batch(self, stream_service, alert_feed):
        copilot = build_copilot(stream_service)
        ingestor = copilot.stream(IngestConfig(max_batch=2, max_latency_seconds=1.0))
        ingestor.submit_many(alert_feed[:5])
        assert ingestor.queue_depth == 5
        reports = ingestor.flush()
        assert len(reports) == 5
        stats = ingestor.stats()
        assert stats.batches == 3  # 2 + 2 + 1
        assert stats.flush_reasons["manual"] == 3
        assert stats.max_queue_depth >= 5
        assert ingestor.queue_depth == 0

    def test_empty_flush_is_noop(self, stream_service):
        ingestor = build_copilot(stream_service).stream()
        assert ingestor.flush() == []


class TestBackgroundWorker:
    def test_size_triggered_flush(self, stream_service, alert_feed):
        copilot = build_copilot(stream_service)
        ingestor = copilot.stream(
            IngestConfig(max_batch=2, max_latency_seconds=5.0)
        )
        with ingestor:
            futures = ingestor.submit_many(alert_feed[:4])
            labels = [future.result(timeout=30.0) for future in futures]
        assert all(report.predicted_label for report in labels)
        assert ingestor.stats().flush_reasons["size"] >= 1

    def test_latency_triggered_flush(self, stream_service, alert_feed):
        """The latency deadline drives the flush — in virtual time.

        The worker picks the queued alert up instantly, then parks in the
        latency window's virtual wait; advancing the fake clock past
        ``max_latency_seconds`` is what flushes the undersized batch.  No
        real waiting happens anywhere.
        """
        copilot = build_copilot(stream_service)
        clock = stu.FakeClock()
        ingestor = copilot.stream(
            IngestConfig(max_batch=1000, max_latency_seconds=0.05), clock=clock
        )
        try:
            future = ingestor.submit(alert_feed[0])
            ingestor.start()
            # The worker holds a 1-alert batch and is parked in the latency
            # window; until the clock moves, nothing flushes.
            clock.wait_for_sleepers(1)
            assert not future.done()
            clock.advance(0.05)
            report = future.result(timeout=30.0)
            assert report.predicted_label
            assert ingestor.stats().flush_reasons["latency"] >= 1
        finally:
            ingestor.stop()

    def test_latency_deadline_does_not_flush_early(self, stream_service, alert_feed):
        """Advancing to just short of the deadline keeps the batch open."""
        copilot = build_copilot(stream_service)
        clock = stu.FakeClock()
        ingestor = copilot.stream(
            IngestConfig(max_batch=1000, max_latency_seconds=0.05), clock=clock
        )
        try:
            future = ingestor.submit(alert_feed[0])
            ingestor.start()
            clock.wait_for_sleepers(1)
            clock.advance(0.04)  # 0.01 short of the deadline
            clock.wait_for_sleepers(1)  # still parked in the same window
            assert not future.done()
            clock.advance(0.01)
            assert future.result(timeout=30.0).predicted_label
            stats = ingestor.stats()
            assert stats.flush_reasons["latency"] == 1
            assert stats.last_flush_size == 1
        finally:
            ingestor.stop()

    def test_cancelled_future_does_not_kill_the_worker(self, stream_service, alert_feed):
        """A future cancelled while queued is dropped; the stream keeps flowing."""
        copilot = build_copilot(stream_service)
        ingestor = copilot.stream(IngestConfig(max_batch=8, max_latency_seconds=1.0))
        doomed = ingestor.submit(alert_feed[0])
        survivor = ingestor.submit(alert_feed[1])
        assert doomed.cancel()
        reports = ingestor.flush()
        assert len(reports) == 1
        assert survivor.result(timeout=1.0).predicted_label
        assert doomed.cancelled()
        # The ingestor is still fully operational after the cancellation.
        follow_up = ingestor.submit(alert_feed[2])
        ingestor.flush()
        assert follow_up.result(timeout=1.0).predicted_label

    def test_stop_while_parked_in_latency_window_terminates(
        self, stream_service, alert_feed
    ):
        """Regression: stop() must unpark a worker holding a partial batch.

        With the worker parked in the *mid-batch* latency window (not the
        outer idle poll), stop()'s single wake is consumed exiting that
        window — the worker must then observe the stop signal before
        re-parking anywhere, or join() never returns under a fake clock.
        """
        copilot = build_copilot(stream_service)
        clock = stu.FakeClock()
        ingestor = copilot.stream(
            IngestConfig(max_batch=1000, max_latency_seconds=60.0), clock=clock
        )
        future = ingestor.submit(alert_feed[0])
        ingestor.start()
        clock.wait_for_sleepers(1)  # parked in the 60s (virtual) window
        ingestor.stop()  # deadlocks here without the stop-signal guards
        assert future.done()
        assert future.result(timeout=0).predicted_label
        assert ingestor.stats().processed == 1

    def test_stop_flushes_remainder(self, stream_service, alert_feed):
        copilot = build_copilot(stream_service)
        ingestor = copilot.stream(IngestConfig(max_batch=64, max_latency_seconds=10.0))
        futures = ingestor.submit_many(alert_feed[:3])
        ingestor.stop()  # worker never started; stop() still drains the queue
        assert all(future.done() for future in futures)
        assert ingestor.stats().processed == 3


class TestBoundedQueue:
    def test_load_shed_raises_when_full(self, stream_service, alert_feed):
        copilot = build_copilot(stream_service)
        ingestor = StreamIngestor(
            copilot,
            IngestConfig(
                max_batch=4,
                max_latency_seconds=1.0,
                queue_capacity=2,
                block_when_full=False,
            ),
        )
        ingestor.submit(alert_feed[0])
        ingestor.submit(alert_feed[1])
        with pytest.raises(IngestQueueFull):
            ingestor.submit(alert_feed[2])
        ingestor.flush()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            IngestConfig(max_batch=0)
        with pytest.raises(ValueError):
            IngestConfig(max_latency_seconds=0.0)
        with pytest.raises(ValueError):
            IngestConfig(queue_capacity=-1)


class TestTelemetryExport:
    def test_queue_and_flush_metrics_reach_hub(self, stream_service, alert_feed):
        copilot = build_copilot(stream_service)
        ingestor = copilot.stream(IngestConfig(max_batch=4, max_latency_seconds=1.0))
        ingestor.submit_many(alert_feed[:4])
        ingestor.flush()
        names = copilot.hub.metrics.metric_names()
        for suffix in ("queue_depth", "flush_size", "batches", "submitted"):
            assert f"rcacopilot.ingest.{suffix}" in names
        flush_size = copilot.hub.metrics.latest(
            "rcacopilot.ingest.flush_size", "stream-ingestor"
        )
        assert flush_size == 4.0


class TestPipelineTelemetry:
    """Satellite: the pipeline gauges reach the hub and ``stats_dict()``."""

    PIPELINE_SUFFIXES = (
        "pipeline_overlap_seconds",
        "predict_inflight",
        "collect_busy_fraction",
        "predict_busy_fraction",
    )

    def test_pipeline_metrics_reach_hub_and_stats(self, stream_service, alert_feed):
        copilot = build_copilot(stream_service)
        ingestor = copilot.stream(
            IngestConfig(
                max_batch=3,
                max_latency_seconds=1.0,
                collect_workers=2,
                pipeline_depth=2,
                predict_chunk_size=2,
            )
        )
        ingestor.submit_many(alert_feed[:9])
        ingestor.flush()
        ingestor.stop()
        names = copilot.hub.metrics.metric_names()
        for suffix in self.PIPELINE_SUFFIXES:
            assert f"rcacopilot.ingest.{suffix}" in names
        flat = ingestor.stats_dict()
        for suffix in self.PIPELINE_SUFFIXES:
            assert suffix in flat
        assert flat["pipeline_overlap_seconds"] >= 0.0
        assert 0.0 <= flat["collect_busy_fraction"] <= 1.0
        assert 0.0 <= flat["predict_busy_fraction"] <= 1.0
        # Everything drained: nothing is left on the prediction lane.
        assert flat["predict_inflight"] == 0.0
        inflight = copilot.hub.metrics.latest(
            "rcacopilot.ingest.predict_inflight", "stream-ingestor"
        )
        assert inflight >= 0.0

    def test_barrier_mode_reports_zero_overlap(self, stream_service, alert_feed):
        """Barrier execution never overlaps stages, and says so."""
        copilot = build_copilot(stream_service)
        ingestor = copilot.stream(IngestConfig(max_batch=3, max_latency_seconds=1.0))
        ingestor.submit_many(alert_feed[:6])
        ingestor.flush()
        ingestor.stop()
        flat = ingestor.stats_dict()
        assert flat["pipeline_overlap_seconds"] == 0.0
        assert flat["predict_inflight"] == 0.0
        assert (
            copilot.hub.metrics.latest(
                "rcacopilot.ingest.pipeline_overlap_seconds", "stream-ingestor"
            )
            == 0.0
        )


class TestFeedbackMidStream:
    """Satellite: feedback between micro-batches reaches the next batch."""

    @pytest.mark.parametrize("backend", ["flat", "sharded"])
    def test_feedback_visible_to_next_micro_batch(
        self, stream_service, alert_feed, backend
    ):
        copilot = build_copilot(stream_service, backend=backend)
        ingestor = copilot.stream(IngestConfig(max_batch=8, max_latency_seconds=1.0))
        ingestor.submit(alert_feed[0])
        first_batch = ingestor.flush()
        diagnosed = first_batch[0].incident
        assert diagnosed.incident_id not in copilot.prediction.vector_store
        ingestor.record_feedback(diagnosed, "StreamConfirmedCategory")
        assert diagnosed.incident_id in copilot.prediction.vector_store
        assert (
            copilot.prediction.vector_store.get(diagnosed.incident_id).category
            == "StreamConfirmedCategory"
        )
        # Replay the *same* alert as a new stream item: the fed-back incident
        # must come back as a neighbour in the very next micro-batch.
        ingestor.submit(copy.deepcopy(alert_feed[0]))
        second_batch = ingestor.flush()
        neighbor_ids = [n.incident_id for n in second_batch[0].prediction.neighbors]
        assert diagnosed.incident_id in neighbor_ids

    @pytest.mark.parametrize("backend", ["flat", "sharded"])
    def test_feedback_correction_between_batches(
        self, stream_service, alert_feed, backend
    ):
        copilot = build_copilot(stream_service, backend=backend)
        ingestor = copilot.stream()
        ingestor.submit(alert_feed[1])
        report = ingestor.flush()[0]
        ingestor.record_feedback(report.incident, "FirstLabel")
        ingestor.record_feedback(report.incident, "CorrectedLabel")
        entry = copilot.prediction.vector_store.get(report.incident.incident_id)
        assert entry.category == "CorrectedLabel"
