"""Concurrency test suite for the streaming front's collection worker pool.

Locks the serial/pooled parity contract: for identical alert streams, the
diagnosis reports, the per-alert failures, the post-feedback index state,
and the ingest counters are value-identical for ``collect_workers`` of
None, 1, and 4 and for both the thread and process backends
(hypothesis-tested over random streams with deterministic flaky/slow
handlers).  Also covers crash containment through the ingestor, the
deterministic ``stop()`` drain, and the thread-safety of ``stats()`` under
a concurrent submit/flush storm.
"""

from __future__ import annotations

import copy
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import streamtest_utils as stu
from repro.core import (
    AutoscalePolicy,
    CollectionConfig,
    CollectionError,
    IngestConfig,
    PipelineConfig,
    RCACopilot,
)
from repro.core.errors import IngestQueueFull
from repro.handlers import HandlerRegistry
from repro.llm import SimulatedLLM
from repro.telemetry import TelemetryHub
from repro.tenancy import TenantRouter


#: (collect_workers, collect_backend) variants locked to the serial baseline.
PARITY_VARIANTS = ((None, "thread"), (1, "thread"), (4, "thread"), (2, "process"))

#: One random stream element: (alert type, flaky marker planted?).
STREAM_ELEMENT = st.tuples(
    st.sampled_from([stu.SLEEPY_TYPE, stu.FLAKY_TYPE]), st.booleans()
)


@pytest.fixture(scope="module")
def base_copilot() -> RCACopilot:
    """One expensive indexed copilot; every run deep-copies it (~10ms)."""
    return stu.build_stream_copilot(strict=True)


def make_stream(spec):
    """Materialize a hypothesis stream spec into alerts (fresh objects)."""
    return [
        stu.make_stream_alert(index, alert_type=alert_type, flaky=flaky)
        for index, (alert_type, flaky) in enumerate(spec)
    ]


def run_stream_variant(base: RCACopilot, spec, workers, backend, depth=1, chunk=None):
    """Ingest the stream twice (feedback in between); return the run's telemetry.

    Wave 1 diagnoses the stream, every successful incident gets an OCE-
    confirmed label fed back, wave 2 replays the same alerts (recurrences
    that should now retrieve the fed-back incidents).  Everything returned
    is deterministic for a given spec, whatever the pool shape — or, with
    ``depth``/``chunk``, whatever the pipeline shape.
    """
    copilot = copy.deepcopy(base)
    ingestor = copilot.stream(
        stu.ingest_config(
            workers, backend, pipeline_depth=depth, predict_chunk_size=chunk
        )
    )
    try:
        futures1 = ingestor.submit_many(make_stream(spec))
        ingestor.flush()
        reports1, failures1 = stu.drain_futures(futures1)
        fed_ids = []
        for position in sorted(reports1):
            incident = futures1[position].result().incident
            ingestor.record_feedback(incident, f"ConfirmedCategory{position % 3}")
            fed_ids.append(incident.incident_id)
        futures2 = ingestor.submit_many(make_stream(spec))
        ingestor.flush()
        reports2, failures2 = stu.drain_futures(futures2)
        return {
            "reports1": reports1,
            "failures1": failures1,
            "reports2": reports2,
            "failures2": failures2,
            "index_state": stu.index_state(copilot, fed_ids),
            "stats": ingestor.stats(),
        }
    finally:
        ingestor.stop()


class TestSerialPooledParity:
    def test_pooled_flush_matches_observe_many(self, base_copilot):
        """The pooled two-phase path equals the plain batch path exactly."""
        spec = [(stu.SLEEPY_TYPE, False), (stu.FLAKY_TYPE, False)] * 3
        direct = copy.deepcopy(base_copilot)
        expected = [
            stu.report_fingerprint(r) for r in direct.observe_many(make_stream(spec))
        ]
        pooled = copy.deepcopy(base_copilot)
        ingestor = pooled.stream(stu.ingest_config(4))
        try:
            futures = ingestor.submit_many(make_stream(spec))
            reports = ingestor.flush()
            assert [stu.report_fingerprint(r) for r in reports] == expected
            assert [
                stu.report_fingerprint(f.result(timeout=30.0)) for f in futures
            ] == expected
        finally:
            ingestor.stop()

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=st.lists(STREAM_ELEMENT, min_size=1, max_size=10))
    def test_parity_across_pool_shapes(self, base_copilot, spec):
        """Reports, failures, feedback effects, and stats match the serial run."""
        baseline = None
        for workers, backend in PARITY_VARIANTS:
            run = run_stream_variant(base_copilot, spec, workers, backend)
            if baseline is None:
                baseline = run
            else:
                assert run == baseline

    @pytest.mark.slow
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=st.lists(STREAM_ELEMENT, min_size=1, max_size=24))
    def test_parity_soak(self, base_copilot, spec):
        """Nightly: the same property over longer streams and more examples."""
        baseline = None
        for workers, backend in (*PARITY_VARIANTS, (3, "process")):
            run = run_stream_variant(base_copilot, spec, workers, backend)
            if baseline is None:
                baseline = run
            else:
                assert run == baseline


#: (pipeline_depth, predict_chunk_size) variants locked to the barrier run.
PIPELINE_VARIANTS = ((1, None), (2, None), (2, 2), (3, 1))

#: One pipeline-parity stream element over the clock-driven handlers.
PIPELINE_STREAM_ELEMENT = st.tuples(
    st.sampled_from([stu.BUSY_TYPE, stu.IDLE_TYPE, stu.FLAKY_TYPE]), st.booleans()
)


def run_pipeline_variant(base: RCACopilot, spec, workers, depth, chunk, grouped):
    """One pipelined (or barrier) run under a FakeClock — zero real sleeps.

    The virtual-I/O handler advances the installed FakeClock instead of
    sleeping, so "collect time" is exact and virtual.  ``grouped`` picks the
    flush pattern: False submits the whole stream then flushes once (the
    flush dequeues ``max_batch``-sized waves, so pipelined variants
    genuinely overlap collect k+1 with predict k); True submits and flushes
    wave by wave.  Same two-pass feedback protocol as
    :func:`run_stream_variant`.
    """
    clock = stu.FakeClock()
    stu.VIRTUAL_IO["clock"] = clock
    copilot = copy.deepcopy(base)
    ingestor = copilot.stream(
        stu.ingest_config(
            workers,
            max_batch=3,
            pipeline_depth=depth,
            predict_chunk_size=chunk,
        ),
        clock=clock,
    )
    try:

        def ingest_pass(alerts):
            futures = []
            if grouped:
                for start in range(0, len(alerts), 3):
                    futures.extend(ingestor.submit_many(alerts[start : start + 3]))
                    ingestor.flush()
            else:
                futures.extend(ingestor.submit_many(alerts))
                ingestor.flush()
            return futures

        futures1 = ingest_pass(make_stream(spec))
        reports1, failures1 = stu.drain_futures(futures1)
        fed_ids = []
        for position in sorted(reports1):
            incident = futures1[position].result().incident
            ingestor.record_feedback(incident, f"ConfirmedCategory{position % 3}")
            fed_ids.append(incident.incident_id)
        futures2 = ingest_pass(make_stream(spec))
        reports2, failures2 = stu.drain_futures(futures2)
        return {
            "reports1": reports1,
            "failures1": failures1,
            "reports2": reports2,
            "failures2": failures2,
            "index_state": stu.index_state(copilot, fed_ids),
            "stats": ingestor.stats(),
        }
    finally:
        ingestor.stop()
        stu.VIRTUAL_IO["clock"] = None


class TestPipelineParity:
    """The pipelined ingest path is value-identical to barrier execution."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        spec=st.lists(PIPELINE_STREAM_ELEMENT, min_size=1, max_size=10),
        workers=st.sampled_from([None, 2]),
        grouped=st.booleans(),
    )
    def test_pipelined_matches_barrier(self, base_copilot, spec, workers, grouped):
        """Reports, failures, feedback effects, and IngestStats all match.

        Every (pipeline_depth, predict_chunk_size) variant — barrier,
        double-buffered, double-buffered + chunked prediction, triple-
        buffered with single-item chunks — must produce byte-identical
        fingerprints over random streams of clock-driven, idle, and flaky
        alerts, under both serial and pooled collection and both flush
        patterns, with handler failures included.
        """
        baseline = None
        for depth, chunk in PIPELINE_VARIANTS:
            run = run_pipeline_variant(base_copilot, spec, workers, depth, chunk, grouped)
            if baseline is None:
                baseline = run
            else:
                assert run == baseline

    def test_pipelined_matches_barrier_on_process_backend(self, base_copilot):
        """The same contract across the process-pool collection backend."""
        spec = [
            (stu.SLEEPY_TYPE, False),
            (stu.FLAKY_TYPE, True),
            (stu.SLEEPY_TYPE, False),
            (stu.FLAKY_TYPE, False),
        ] * 2
        baseline = run_stream_variant(base_copilot, spec, 2, "process")
        pipelined = run_stream_variant(
            base_copilot, spec, 2, "process", depth=2, chunk=2
        )
        assert pipelined == baseline


class TestCrashContainment:
    @pytest.mark.parametrize(
        "workers,backend", [(None, "thread"), (4, "thread"), (2, "process")]
    )
    def test_worker_failure_fails_only_its_future(self, base_copilot, workers, backend):
        copilot = copy.deepcopy(base_copilot)
        ingestor = copilot.stream(stu.ingest_config(workers, backend))
        try:
            flaky_positions = {1, 3}
            alerts = [
                stu.make_stream_alert(
                    i, alert_type=stu.FLAKY_TYPE, flaky=(i in flaky_positions)
                )
                for i in range(5)
            ]
            futures = ingestor.submit_many(alerts)
            reports = ingestor.flush()
            # The batch still predicted: every non-flaky alert has a report.
            assert len(reports) == len(alerts) - len(flaky_positions)
            for position, future in enumerate(futures):
                if position in flaky_positions:
                    with pytest.raises(CollectionError, match="simulated telemetry outage"):
                        future.result(timeout=30.0)
                else:
                    assert future.result(timeout=30.0).predicted_label
            stats = ingestor.stats()
            assert stats.processed == len(alerts)
            assert stats.collect_failures == len(flaky_positions)
            # The pool survives for the next wave.
            wave2 = ingestor.submit_many(
                [stu.make_stream_alert(100 + i) for i in range(3)]
            )
            ingestor.flush()
            assert all(f.result(timeout=30.0).predicted_label for f in wave2)
            assert ingestor.stats().collect_failures == len(flaky_positions)
        finally:
            ingestor.stop()

    def test_failure_callback_may_reenter_ingestor(self, base_copilot):
        """Futures are resolved outside the ingestion lock.

        A done-callback that re-enters the ingestor (here: record_feedback,
        which takes the same lock as batch processing) must not deadlock the
        flushing thread — regression for failure futures being resolved
        while the lock was still held.
        """
        copilot = copy.deepcopy(base_copilot)
        ingestor = copilot.stream(stu.ingest_config(2))
        try:
            flaky = stu.make_stream_alert(0, alert_type=stu.FLAKY_TYPE, flaky=True)
            future = ingestor.submit(flaky)
            incident = copilot.history.all()[0]
            reentered = []

            def callback(resolved):
                ingestor.record_feedback(incident, "CallbackConfirmed")
                reentered.append(True)

            future.add_done_callback(callback)
            ingestor.flush()  # deadlocks here if failures resolve under the lock
            assert reentered == [True]
            with pytest.raises(CollectionError):
                future.result(timeout=0)
            assert copilot.history.get(incident.incident_id).category == "CallbackConfirmed"
        finally:
            ingestor.stop()

    def test_collect_metrics_reach_hub(self, base_copilot):
        copilot = copy.deepcopy(base_copilot)
        ingestor = copilot.stream(stu.ingest_config(4))
        try:
            ingestor.submit_many([stu.make_stream_alert(i) for i in range(4)])
            ingestor.flush()
        finally:
            ingestor.stop()
        names = copilot.hub.metrics.metric_names()
        for suffix in (
            "collect_pool_size",
            "collect_seconds",
            "predict_seconds",
            "collect_utilization",
            "collect_failures",
        ):
            assert f"rcacopilot.ingest.{suffix}" in names
        latest = copilot.hub.metrics.latest(
            "rcacopilot.ingest.collect_pool_size", "stream-ingestor"
        )
        assert latest == 4.0
        utilization = copilot.hub.metrics.latest(
            "rcacopilot.ingest.collect_utilization", "stream-ingestor"
        )
        assert 0.0 <= utilization <= 1.0


def cheap_copilot() -> RCACopilot:
    """A collection-only copilot (no handlers, no index) for soak tests."""
    return stu.build_stream_copilot(
        strict=False, registry=HandlerRegistry(), with_history=False
    )


def cheap_router(ingest: IngestConfig) -> TenantRouter:
    """A collection-only tenant router (no handlers, no indexes) for soaks."""
    return TenantRouter(
        TelemetryHub(),
        registry=HandlerRegistry(),
        model=SimulatedLLM(),
        config=PipelineConfig(collection=CollectionConfig(strict=False)),
        ingest=ingest,
    )


class TestStopDrain:
    def test_alert_enqueued_after_final_poll_is_not_dropped(self):
        """White-box regression for the stop() race.

        The worker exits on its first empty poll after the stop signal; an
        alert submitted *after* that exit but *before* ``stop()`` finishes
        must still be processed by the deterministic drain.
        """
        ingestor = cheap_copilot().stream(
            IngestConfig(max_batch=4, max_latency_seconds=0.01)
        ).start()
        ingestor._stopping.set()
        assert ingestor._worker is not None
        ingestor._worker.join(timeout=30.0)
        assert not ingestor._worker.is_alive()
        late = ingestor.submit(stu.make_stream_alert(0))
        ingestor.stop()
        assert late.done()
        assert late.result(timeout=0).incident.incident_id
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == 1

    def test_stop_with_pending_resize_strands_nothing_and_leaks_no_threads(self):
        """Regression: stop() while a scale event left the pool executor-less.

        A shrink retires the executor and defers the rebuild to the next
        wave; alerts queued behind that pending rebuild must still be
        drained by stop(), and close() must join the retired executor so no
        collection worker thread survives the ingestor.
        """
        clock = stu.FakeClock()
        config = IngestConfig(
            max_batch=2,
            max_latency_seconds=5.0,
            collect_workers=2,
            collect_workers_min=1,
            collect_workers_max=4,
            autoscale=AutoscalePolicy(
                high_utilization=0.9,
                low_utilization=0.5,
                ewma_alpha=1.0,
                hysteresis_batches=1,
                cooldown_seconds=0.0,
                burst_queue_factor=None,
            ),
        )
        ingestor = cheap_copilot().stream(config, clock=clock)
        # Two idle batches, utilization exactly 0.0 under the fake clock:
        # the first accumulates the low streak (shrink refused, backlog),
        # the second shrinks 2 -> 1, retiring the thread executor with the
        # rebuild deferred to the next wave.
        warm = ingestor.submit_many([stu.make_stream_alert(i) for i in range(4)])
        ingestor.flush()
        assert all(f.done() for f in warm)
        pool = ingestor._collect_pool
        assert pool.workers == 1  # shrink happened
        assert pool._executor is None  # ...and the rebuild is still pending
        assert pool._retired  # the old executor is awaiting its join
        # Queue more alerts behind the pending rebuild, then stop: the
        # drain must rebuild the pool, process everything, and close() must
        # leave zero collection threads behind.
        late = ingestor.submit_many([stu.make_stream_alert(10 + i) for i in range(3)])
        ingestor.stop()
        assert all(f.done() for f in late)
        assert all(f.result(timeout=0).incident.incident_id for f in late)
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == 7
        assert pool._executor is None and pool._retired == []
        assert not [
            t for t in threading.enumerate() if t.name.startswith("rcacopilot-collect")
        ]

    def test_stop_races_autoscaled_background_worker(self):
        """stop() racing live resizes must neither strand alerts nor leak.

        The background worker flushes micro-batches whose every boundary
        may resize the pool (aggressive policy, zero cooldown); stopping
        mid-stream exercises the drain against whatever resize state the
        race produced.  Nondeterministic by design — the invariants must
        hold for every interleaving.
        """
        config = IngestConfig(
            max_batch=4,
            max_latency_seconds=0.005,
            collect_workers=2,
            collect_workers_min=1,
            collect_workers_max=4,
            autoscale=AutoscalePolicy(
                high_utilization=0.6,
                low_utilization=0.5,
                ewma_alpha=1.0,
                hysteresis_batches=1,
                cooldown_seconds=0.0,
                burst_queue_factor=1.5,
            ),
        )
        ingestor = cheap_copilot().stream(config).start()
        futures = ingestor.submit_many([stu.make_stream_alert(i) for i in range(40)])
        ingestor.stop()  # races the worker mid-batch and mid-resize
        assert all(f.done() for f in futures)
        assert all(f.result(timeout=0) is not None for f in futures)
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == 40
        assert not [
            t for t in threading.enumerate() if t.name.startswith("rcacopilot-collect")
        ]

    def test_stop_during_inflight_prediction_drains_deterministically(self):
        """stop() while a prediction is mid-flight on the pipeline lane.

        A GateModel holds the wave's prediction at a known point; stop()
        is issued from another thread while the prediction is parked, the
        gate is then released, and the drain must finish with no stranded
        futures, both the collection pool and the prediction executor
        closed, and post-stop flush() still working.
        """
        model = stu.GateModel()
        copilot = stu.build_stream_copilot(model=model)
        ingestor = copilot.stream(
            stu.ingest_config(2, max_batch=4, pipeline_depth=2, predict_chunk_size=2)
        ).start()
        try:
            model.close()
            futures = ingestor.submit_many([stu.make_stream_alert(i) for i in range(4)])
            assert model.entered.wait(timeout=30.0)  # prediction is in flight
            stopper = threading.Thread(target=ingestor.stop)
            stopper.start()
            model.open()
            stopper.join(timeout=30.0)
            assert not stopper.is_alive()
            # No stranded futures: every alert resolved by the drain.
            assert all(f.done() for f in futures)
            assert all(f.result(timeout=0).predicted_label for f in futures)
            # Both executors are gone and no pipeline thread survives.
            assert ingestor._predict_executor is None
            assert not [
                t
                for t in threading.enumerate()
                if t.name.startswith("rcacopilot-predict")
                or t.name.startswith("rcacopilot-collect")
            ]
            # Post-stop manual use still works (lanes lazily recreated).
            late = ingestor.submit(stu.make_stream_alert(99))
            ingestor.flush()
            assert late.result(timeout=0).predicted_label
            stats = ingestor.stats()
            assert stats.processed == stats.submitted == 5
        finally:
            ingestor.stop()

    def test_stop_races_concurrent_producer_without_losing_alerts(self):
        total = 40
        ingestor = cheap_copilot().stream(
            IngestConfig(max_batch=8, max_latency_seconds=0.005)
        ).start()
        futures = []

        def produce():
            for index in range(total):
                futures.append(ingestor.submit(stu.make_stream_alert(index)))

        producer = threading.Thread(target=produce)
        producer.start()
        time.sleep(0.01)
        ingestor.stop()  # races the producer; must neither hang nor drop
        producer.join(timeout=30.0)
        assert not producer.is_alive()
        ingestor.flush()  # mop up anything submitted after stop() returned
        assert len(futures) == total
        for future in futures:
            assert future.result(timeout=30.0) is not None
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == total


class TestStatsUnderConcurrency:
    def test_stats_snapshots_stay_consistent_under_storm(self):
        """Satellite regression: hammer stats() while submit/flush mutate.

        Every snapshot must satisfy the counter invariants — in particular
        ``processed <= submitted``, which only holds because ``submit``
        counts the submission *before* enqueueing — and iterating the
        snapshot (``as_dict``) must never race the live flush-reason dict.
        """
        per_producer, producers = 30, 2
        total = per_producer * producers
        ingestor = cheap_copilot().stream(
            IngestConfig(max_batch=4, max_latency_seconds=0.001)
        ).start()
        stop_reading = threading.Event()
        violations = []

        def read_loop():
            while not stop_reading.is_set():
                snapshot = ingestor.stats()
                flat = ingestor.stats_dict()
                if snapshot.processed > snapshot.submitted:
                    violations.append(
                        f"processed {snapshot.processed} > submitted {snapshot.submitted}"
                    )
                if sum(snapshot.flush_reasons.values()) != snapshot.batches:
                    violations.append(
                        f"flush reasons {snapshot.flush_reasons} != batches {snapshot.batches}"
                    )
                if flat["processed"] > flat["submitted"]:
                    violations.append("flat snapshot processed > submitted")

        def produce(offset):
            for index in range(per_producer):
                ingestor.submit(stu.make_stream_alert(offset + index))

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        writers = [
            threading.Thread(target=produce, args=(i * per_producer,))
            for i in range(producers)
        ]
        for thread in readers + writers:
            thread.start()
        try:
            for thread in writers:
                thread.join(timeout=60.0)
            ingestor.stop()
        finally:
            stop_reading.set()
            for thread in readers:
                thread.join(timeout=30.0)
        assert not violations, violations[:5]
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == total
        assert sum(stats.flush_reasons.values()) == stats.batches

    def test_submit_many_bursts_keep_snapshots_consistent(self):
        """Satellite regression: the bulk enqueue counts the burst atomically.

        ``submit_many`` books the whole burst's ``submitted`` under one
        stats-lock acquisition *before* enqueueing anything, so a reader
        racing the background worker must never observe
        ``processed > submitted`` — not even transiently mid-burst.
        """
        burst, bursts, producers = 6, 5, 2
        total = burst * bursts * producers
        ingestor = cheap_copilot().stream(
            IngestConfig(max_batch=4, max_latency_seconds=0.001)
        ).start()
        stop_reading = threading.Event()
        violations = []

        def read_loop():
            while not stop_reading.is_set():
                snapshot = ingestor.stats()
                if snapshot.processed > snapshot.submitted:
                    violations.append(
                        f"processed {snapshot.processed} > submitted {snapshot.submitted}"
                    )
                if sum(snapshot.flush_reasons.values()) != snapshot.batches:
                    violations.append("flush reasons out of step with batches")

        def produce(offset):
            for index in range(bursts):
                base = offset + index * burst
                ingestor.submit_many(
                    [stu.make_stream_alert(base + i) for i in range(burst)]
                )

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        writers = [
            threading.Thread(target=produce, args=(i * burst * bursts,))
            for i in range(producers)
        ]
        for thread in readers + writers:
            thread.start()
        try:
            for thread in writers:
                thread.join(timeout=60.0)
            ingestor.stop()
        finally:
            stop_reading.set()
            for thread in readers:
                thread.join(timeout=30.0)
        assert not violations, violations[:5]
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == total

    def test_per_tenant_snapshots_stay_consistent_under_storm(self):
        """Satellite regression: the tenant-scoped view of the same storm.

        Two producers each hammer their *own* tenant of a
        :class:`TenantRouter` while readers take per-tenant snapshots; the
        counter invariants must hold inside every tenant's view — not just
        in the global rollup — which requires the per-tenant counters to
        move under the same stats lock as the global ones.
        """
        per_producer, tenants = 30, ("alpha", "beta")
        router = cheap_router(
            IngestConfig(max_batch=4, max_latency_seconds=0.001)
        )
        for tenant in tenants:
            router.register(tenant)
        router.start()
        stop_reading = threading.Event()
        violations = []

        def read_loop():
            while not stop_reading.is_set():
                for tenant in tenants:
                    snapshot = router.tenant_stats(tenant)
                    if snapshot.processed > snapshot.submitted:
                        violations.append(
                            f"{tenant}: processed {snapshot.processed} > "
                            f"submitted {snapshot.submitted}"
                        )
                flat = router.tenant_stats_dict()
                for tenant, stats in flat.items():
                    if stats["processed"] > stats["submitted"]:
                        violations.append(f"{tenant}: flat processed > submitted")

        def produce(tenant, offset):
            for index in range(per_producer):
                router.submit(stu.make_stream_alert(offset + index), tenant=tenant)

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        writers = [
            threading.Thread(target=produce, args=(tenant, i * per_producer))
            for i, tenant in enumerate(tenants)
        ]
        for thread in readers + writers:
            thread.start()
        try:
            for thread in writers:
                thread.join(timeout=60.0)
            router.stop()
        finally:
            stop_reading.set()
            for thread in readers:
                thread.join(timeout=30.0)
        assert not violations, violations[:5]
        for tenant in tenants:
            stats = router.tenant_stats(tenant)
            assert stats.processed == stats.submitted == per_producer
            assert sum(stats.flush_reasons.values()) == stats.batches
        global_stats = router.stats()
        assert global_stats.processed == per_producer * len(tenants)

    def test_submit_many_rollback_race_under_load_shed(self):
        """Satellite regression: the queue.Full rollback races a live drainer.

        ``submit_many`` books the whole burst up front, then rolls the
        un-enqueued remainder back when the bounded queue overflows
        mid-burst (``block_when_full=False``).  With the background worker
        draining concurrently, every interleaving must keep
        ``processed <= submitted`` in every snapshot, the rollback must
        land exactly (final submitted == alerts actually enqueued), and
        the :class:`IngestQueueFull` exception must carry a resolvable
        futures prefix for what did get in.
        """
        burst, bursts, producers = 6, 8, 2
        ingestor = cheap_copilot().stream(
            IngestConfig(
                max_batch=4,
                max_latency_seconds=0.001,
                queue_capacity=5,  # < burst, so mid-burst overflow is common
                block_when_full=False,
            )
        ).start()
        stop_reading = threading.Event()
        violations = []
        accepted_futures = []
        futures_lock = threading.Lock()

        def read_loop():
            while not stop_reading.is_set():
                snapshot = ingestor.stats()
                if snapshot.processed > snapshot.submitted:
                    violations.append(
                        f"processed {snapshot.processed} > submitted {snapshot.submitted}"
                    )
                if sum(snapshot.flush_reasons.values()) != snapshot.batches:
                    violations.append("flush reasons out of step with batches")

        def produce(offset):
            for index in range(bursts):
                base = offset + index * burst
                alerts = [stu.make_stream_alert(base + i) for i in range(burst)]
                try:
                    futures = ingestor.submit_many(alerts)
                except IngestQueueFull as exc:
                    # The enqueued prefix is carried on the exception, in
                    # submission order, and stays resolvable.
                    assert len(exc.enqueued) < len(alerts)
                    futures = exc.enqueued
                with futures_lock:
                    accepted_futures.extend(futures)

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        writers = [
            threading.Thread(target=produce, args=(i * burst * bursts,))
            for i in range(producers)
        ]
        for thread in readers + writers:
            thread.start()
        try:
            for thread in writers:
                thread.join(timeout=60.0)
            ingestor.stop()
        finally:
            stop_reading.set()
            for thread in readers:
                thread.join(timeout=30.0)
        assert not violations, violations[:5]
        # Every accepted alert (full bursts + load-shed prefixes) resolved.
        for future in accepted_futures:
            assert future.result(timeout=30.0).incident.incident_id
        stats = ingestor.stats()
        # The rollback landed exactly: only accepted alerts stayed counted.
        assert stats.submitted == len(accepted_futures)
        assert stats.processed == stats.submitted

    @pytest.mark.slow
    def test_background_pooled_soak(self, base_copilot):
        """Nightly: background worker + 4 collect workers under a long burst."""
        copilot = copy.deepcopy(base_copilot)
        config = IngestConfig(
            max_batch=8, max_latency_seconds=0.005, collect_workers=4
        )
        total = 200
        with copilot.stream(config) as ingestor:
            futures = [
                ingestor.submit(
                    stu.make_stream_alert(
                        i,
                        alert_type=(stu.FLAKY_TYPE if i % 7 == 3 else stu.SLEEPY_TYPE),
                        flaky=(i % 14 == 3),
                    )
                )
                for i in range(total)
            ]
            resolved = 0
            for future in futures:
                try:
                    future.result(timeout=120.0)
                except CollectionError:
                    pass
                resolved += 1
        assert resolved == total
        stats = ingestor.stats()
        assert stats.processed == stats.submitted == total
        assert stats.collect_failures == sum(
            1 for i in range(total) if i % 14 == 3
        )
