"""Tests for the category catalogue, diagnostic rendering, corpus generator and splits."""

from __future__ import annotations

import pytest

from repro.datagen import (
    CategoryCatalogue,
    CorpusConfig,
    CorpusGenerator,
    allocate_occurrences,
    chronological_split,
    generate_corpus,
    kfold,
    random_split,
    render_action_output,
    render_diagnostic_report,
    stratified_split,
    summarize_split,
    synthesize_long_tail,
    table1_category_specs,
)
from repro.incidents import compute_recurrence_stats
from repro.monitors import ALERT_TYPES

import random


class TestCatalogue:
    def test_table1_specs_complete(self):
        specs = table1_category_specs()
        assert len(specs) == 10
        assert all(spec.signature_tokens for spec in specs)
        assert all(spec.alert_type in ALERT_TYPES for spec in specs)

    def test_synthesize_long_tail_unique_and_deterministic(self):
        a = synthesize_long_tail(50, seed=1)
        b = synthesize_long_tail(50, seed=1)
        assert [s.name for s in a] == [s.name for s in b]
        assert len({s.name for s in a}) == 50

    def test_synthesize_too_many_raises(self):
        with pytest.raises(ValueError):
            synthesize_long_tail(10_000)

    def test_default_catalogue_size_and_lookup(self):
        catalogue = CategoryCatalogue.default(total_categories=40)
        assert len(catalogue) == 40
        assert catalogue.get("FullDisk") is not None
        assert "FullDisk" in catalogue
        assert catalogue.get("Missing") is None
        assert catalogue.by_alert_type("DiskSpaceLow")

    def test_duplicate_names_rejected(self):
        spec = table1_category_specs()[0]
        with pytest.raises(ValueError):
            CategoryCatalogue([spec, spec])


class TestDiagInfo:
    def test_report_sections(self):
        spec = table1_category_specs()[1]  # HubPortExhaustion
        report = render_diagnostic_report(spec, "machine-01", seed=3)
        text = report.render()
        assert len(report) == 5
        assert "UDP socket count" in text
        assert any(token.split()[0] in text for token in spec.signature_tokens)

    def test_report_deterministic_per_seed(self):
        spec = table1_category_specs()[0]
        a = render_diagnostic_report(spec, "m", seed=9).render()
        b = render_diagnostic_report(spec, "m", seed=9).render()
        assert a == b

    def test_action_output_contains_mitigation(self):
        spec = table1_category_specs()[0]
        output = render_action_output(spec, "m", seed=1)
        assert output["mitigation.suggested"] == spec.mitigation


class TestGenerator:
    def test_full_corpus_statistics(self):
        store = generate_corpus()  # default 653 / 163
        stats = compute_recurrence_stats(store.all())
        assert len(store) == 653
        assert len(store.categories()) == 163
        assert stats.new_category_fraction == pytest.approx(0.2496, abs=0.002)
        assert stats.fraction_within_20_days > 0.90

    def test_table1_occurrences_preserved(self):
        store = generate_corpus()
        counts = store.category_counts()
        assert counts["HubPortExhaustion"] == 27
        assert counts["DispatcherTaskCancelled"] == 22
        assert counts["MaliciousAttack"] == 2

    def test_incidents_have_diagnostics_and_labels(self, tiny_corpus):
        for incident in tiny_corpus:
            assert incident.is_labelled()
            assert not incident.diagnostic.is_empty()
            assert incident.action_output
            assert incident.alert_type in ALERT_TYPES

    def test_ids_are_chronological(self, tiny_corpus):
        incidents = tiny_corpus.all()
        assert [i.incident_id for i in incidents] == sorted(i.incident_id for i in incidents)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(total_incidents=10, total_categories=20)
        with pytest.raises(ValueError):
            CorpusConfig(total_incidents=20, total_categories=5)

    def test_allocation_sums_to_total(self):
        config = CorpusConfig(total_incidents=300, total_categories=80, seed=9)
        generator = CorpusGenerator(config)
        counts = allocate_occurrences(config, generator.catalogue, random.Random(9))
        assert sum(counts.values()) == 300
        assert all(count >= 1 for count in counts.values())

    def test_generation_is_deterministic(self):
        a = generate_corpus(total_incidents=50, total_categories=15, seed=4, duration_days=60)
        b = generate_corpus(total_incidents=50, total_categories=15, seed=4, duration_days=60)
        assert [i.incident_id for i in a] == [i.incident_id for i in b]
        assert [i.category for i in a] == [i.category for i in b]


class TestSplits:
    def test_chronological_split_respects_time(self, small_corpus):
        train, test = chronological_split(small_corpus, 0.75)
        assert len(train) + len(test) == len(small_corpus)
        assert max(i.created_at for i in train) <= min(i.created_at for i in test)

    def test_random_split_sizes(self, small_corpus):
        train, test = random_split(small_corpus, 0.8, seed=1)
        assert len(train) + len(test) == len(small_corpus)
        assert len(train) > len(test)

    def test_stratified_split_keeps_recurring_categories_in_train(self, small_corpus):
        train, test = stratified_split(small_corpus, 0.75, seed=1)
        train_categories = set(train.categories())
        for category, count in small_corpus.category_counts().items():
            if count >= 2:
                assert category in train_categories

    def test_kfold_covers_all_incidents(self, tiny_corpus):
        folds = list(kfold(tiny_corpus, folds=4, seed=2))
        assert len(folds) == 4
        total_test = sum(len(test) for _, test in folds)
        assert total_test == len(tiny_corpus)

    def test_kfold_invalid(self, tiny_corpus):
        with pytest.raises(ValueError):
            list(kfold(tiny_corpus, folds=1))

    def test_summarize_split(self, small_corpus):
        train, test = chronological_split(small_corpus)
        summary = summarize_split(train, test)
        assert summary.train_size == len(train)
        assert 0.0 <= summary.unseen_fraction <= 1.0
