"""Tests for text utilities, vocabulary, FastText and hashed embedders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embedding import (
    FastTextClassifier,
    FastTextClassifierConfig,
    FastTextConfig,
    FastTextEmbedder,
    HashedEmbedder,
    Vocabulary,
    character_ngrams,
    jaccard_similarity,
    ngram_hash,
    sentences,
    tokenize,
    unique_preserving_order,
)


class TestTextUtilities:
    def test_tokenize_splits_camel_case(self):
        tokens = tokenize("MailboxOfflineException occurred")
        assert "mailboxofflineexception" in tokens
        assert "mailbox" in tokens and "offline" in tokens

    def test_tokenize_drops_numbers_by_default(self):
        assert "11001" not in tokenize("error 11001 seen")
        assert "11001" in tokenize("error 11001 seen", keep_numbers=True)

    def test_character_ngrams_have_boundaries(self):
        grams = character_ngrams("port", min_n=3, max_n=3)
        assert "<po" in grams and "rt>" in grams

    def test_character_ngrams_invalid(self):
        with pytest.raises(ValueError):
            character_ngrams("port", min_n=0, max_n=2)
        with pytest.raises(ValueError):
            character_ngrams("port", min_n=4, max_n=2)

    def test_ngram_hash_deterministic_and_bounded(self):
        assert ngram_hash("abc", 100) == ngram_hash("abc", 100)
        assert 0 <= ngram_hash("abc", 100) < 100

    def test_sentences_split_lines_and_punctuation(self):
        text = "First line. Second part!\nThird line"
        assert len(sentences(text)) == 3

    def test_unique_preserving_order(self):
        assert unique_preserving_order(["b", "a", "b", "c"]) == ["b", "a", "c"]

    def test_jaccard_similarity_bounds(self):
        assert jaccard_similarity([], []) == 0.0
        assert jaccard_similarity(["a"], ["a"]) == 1.0
        assert jaccard_similarity(["a"], ["b"]) == 0.0

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=5), max_size=20))
    def test_jaccard_symmetric(self, tokens):
        other = list(reversed(tokens)) + ["zzz"]
        assert jaccard_similarity(tokens, other) == pytest.approx(
            jaccard_similarity(other, tokens)
        )


class TestVocabulary:
    def test_fit_and_lookup(self):
        vocab = Vocabulary(min_count=1, buckets=100)
        vocab.fit(["socket error socket", "disk full"])
        assert "socket" in vocab
        assert vocab.word_count("socket") == 2
        assert vocab.word_id("missing") is None
        assert vocab.num_vectors == vocab.num_words + 100

    def test_min_count_filters(self):
        vocab = Vocabulary(min_count=2, buckets=10)
        vocab.fit(["rare word word"])
        assert "word" in vocab
        assert "rare" not in vocab

    def test_subword_ids_in_bucket_range(self):
        vocab = Vocabulary(buckets=50)
        vocab.fit(["hello world"])
        for row in vocab.subword_ids("unknownword"):
            assert vocab.num_words <= row < vocab.num_vectors

    def test_oov_word_still_has_indices(self):
        vocab = Vocabulary(buckets=50)
        vocab.fit(["hello"])
        assert vocab.indices("somethingnew")  # subwords only

    def test_encode_documents(self):
        vocab = Vocabulary(buckets=10)
        vocab.fit(["a quick test"])
        encoded = vocab.encode("quick test")
        assert len(encoded) == 2


CORPUS = [
    "WinSock error 11001 socket exhaustion on Transport.exe front door",
    "UDP socket count exceeded on hub machine proxy connect failure",
    "delivery queue length exceeded limit mailbox delivery hang",
    "messages queued for mailbox delivery exceeded the configured limit",
    "invalid certificate thumbprint mismatch token request failed",
    "certificate rotation overrode existing certificate misconfiguration outage",
    "disk full IOException not enough space on the disk diagnostics",
    "IO exception while writing to disk worker crashed disk usage",
]


class TestFastTextEmbedder:
    @pytest.fixture(scope="class")
    def embedder(self):
        config = FastTextConfig(dim=32, epochs=1, seed=3, buckets=2000)
        return FastTextEmbedder(config).fit(CORPUS)

    def test_embedding_shape_and_norm(self, embedder):
        vector = embedder.embed(CORPUS[0])
        assert vector.shape == (32,)
        assert np.linalg.norm(vector) == pytest.approx(
            embedder.config.document_norm, rel=1e-6
        )

    def test_empty_text_embeds_to_zero(self, embedder):
        assert np.allclose(embedder.embed(""), 0.0)

    def test_similar_documents_closer_than_dissimilar(self, embedder):
        socket_a = embedder.embed(CORPUS[0])
        socket_variant = embedder.embed(
            "WinSock error 11001 socket exhaustion on Transport.exe hub machine"
        )
        disk = embedder.embed(CORPUS[6])
        near = np.linalg.norm(socket_a - socket_variant)
        far = np.linalg.norm(socket_a - disk)
        assert near < far

    def test_embed_many_stacks(self, embedder):
        matrix = embedder.embed_many(CORPUS[:3])
        assert matrix.shape == (3, 32)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            FastTextEmbedder(FastTextConfig(dim=8)).embed("text")

    def test_deterministic_given_seed(self):
        config = FastTextConfig(dim=16, epochs=1, seed=5, buckets=500)
        a = FastTextEmbedder(config).fit(CORPUS).embed(CORPUS[0])
        b = FastTextEmbedder(config).fit(CORPUS).embed(CORPUS[0])
        assert np.allclose(a, b)


class TestFastTextClassifier:
    def test_fit_and_predict_separable_classes(self):
        texts = CORPUS
        labels = ["socket", "socket", "delivery", "delivery", "cert", "cert", "disk", "disk"]
        clf = FastTextClassifier(FastTextClassifierConfig(dim=24, epochs=25, seed=2))
        clf.fit(texts, labels)
        assert clf.predict("UDP socket exhaustion WinSock proxy") == "socket"
        assert clf.predict("disk full IOException no space") == "disk"
        probabilities = clf.predict_proba(texts[0])
        assert pytest.approx(sum(probabilities.values()), abs=1e-6) == 1.0

    def test_fit_validation(self):
        clf = FastTextClassifier()
        with pytest.raises(ValueError):
            clf.fit([], [])
        with pytest.raises(ValueError):
            clf.fit(["a"], ["x", "y"])

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            FastTextClassifier().predict("text")

    def test_predict_many(self):
        clf = FastTextClassifier(FastTextClassifierConfig(dim=8, epochs=5))
        clf.fit(CORPUS[:4], ["a", "a", "b", "b"])
        assert len(clf.predict_many(CORPUS[:2])) == 2


class TestHashedEmbedder:
    def test_deterministic(self):
        a = HashedEmbedder(dim=64).embed("socket error on machine")
        b = HashedEmbedder(dim=64).embed("socket error on machine")
        assert np.allclose(a, b)

    def test_unit_norm(self):
        vector = HashedEmbedder(dim=64).embed("socket error")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert np.allclose(HashedEmbedder(dim=16).embed(""), 0.0)

    def test_long_tokens_dropped(self):
        embedder = HashedEmbedder(dim=32, max_token_length=6)
        assert np.allclose(embedder.embed("Extraordinarily LongTokenNameHere"),
                           embedder.embed("LongTokenNameHere Extraordinarily"))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            HashedEmbedder(dim=0)

    def test_fit_is_noop(self):
        embedder = HashedEmbedder(dim=8)
        assert embedder.fit(["a"]) is embedder
