"""Tests for metrics, reporting, figures, deployment simulation and experiment runners."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    DeploymentSimulator,
    TeamProfile,
    alert_type_coverage,
    f1_report,
    figure2_recurrence,
    figure3_category_distribution,
    render_bar_chart,
    render_matrix,
    render_table,
    table1_scenarios,
    top_confusions,
)
from repro.eval.experiment import evaluate_method
from repro.baselines import FineTunedGptBaseline


class TestMetrics:
    def test_perfect_predictions(self):
        report = f1_report(["a", "b", "a"], ["a", "b", "a"])
        assert report.micro_f1 == pytest.approx(1.0)
        assert report.macro_f1 == pytest.approx(1.0)
        assert report.accuracy == pytest.approx(1.0)

    def test_all_wrong(self):
        report = f1_report(["a", "a"], ["b", "b"])
        assert report.micro_f1 == 0.0
        assert report.macro_f1 == 0.0

    def test_micro_equals_accuracy_single_label(self):
        truths = ["a", "b", "c", "a", "b"]
        predictions = ["a", "c", "c", "b", "b"]
        report = f1_report(truths, predictions)
        assert report.micro_f1 == pytest.approx(report.accuracy)

    def test_macro_penalises_minority_misses(self):
        truths = ["common"] * 9 + ["rare"]
        predictions = ["common"] * 10
        report = f1_report(truths, predictions)
        assert report.micro_f1 > report.macro_f1

    def test_empty_inputs(self):
        report = f1_report([], [])
        assert report.micro_f1 == 0.0 and report.support == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            f1_report(["a"], [])

    def test_top_confusions(self):
        confusions = top_confusions(["a", "a", "b"], ["b", "b", "b"])
        assert confusions[0] == ("a", "b", 2)

    def test_spurious_new_labels_hurt_micro(self):
        truths = ["a", "a", "b"]
        predictions = ["a", "NewLabel", "b"]
        report = f1_report(truths, predictions)
        assert report.micro_f1 < 1.0

    @given(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=50),
    )
    @settings(max_examples=40)
    def test_bounds_and_self_consistency(self, truths):
        predictions = list(truths)
        report = f1_report(truths, predictions)
        assert report.micro_f1 == pytest.approx(1.0)
        shuffled = list(reversed(truths))
        partial = f1_report(truths, shuffled)
        assert 0.0 <= partial.micro_f1 <= 1.0
        assert 0.0 <= partial.macro_f1 <= 1.0


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["33", "4"]], title="T")
        assert text.startswith("T\n")
        assert "33" in text

    def test_render_table_row_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_render_bar_chart(self):
        text = render_bar_chart([("x", 1.0), ("y", 0.5)], title="chart")
        assert "#" in text and "x" in text

    def test_render_bar_chart_empty(self):
        assert "(no data)" in render_bar_chart([], title="chart")

    def test_render_matrix_missing_cell(self):
        text = render_matrix(["r"], ["c1", "c2"], {("r", "c1"): 0.5})
        assert "-" in text


class TestFigures:
    def test_figure2(self, small_corpus):
        result = figure2_recurrence(small_corpus)
        assert result.fraction_within_20_days > 0.5
        assert sum(p for _, p in result.bins) <= 1.0 + 1e-9
        assert "Figure 2" in result.render()

    def test_figure3(self, small_corpus):
        result = figure3_category_distribution(small_corpus)
        assert result.total_categories == len(small_corpus.categories())
        assert sum(result.histogram.values()) == result.total_categories
        assert "Figure 3" in result.render()

    def test_table1_scenarios_rendering(self):
        text = table1_scenarios()
        assert "HubPortExhaustion" in text
        assert "DispatcherTaskCancelled" in text


class TestExperimentRunner:
    def test_evaluate_method_scores_and_times(self, corpus_split):
        train, test = corpus_split
        result = evaluate_method(FineTunedGptBaseline(), train, test)
        assert 0.0 <= result.micro_f1 <= 1.0
        assert result.train_seconds >= 0.0
        assert result.infer_seconds_per_incident >= 0.0
        assert len(result.predictions) == len(test.labelled())


class TestDeployment:
    def test_small_deployment_simulation(self):
        profiles = [
            TeamProfile("Team A", enabled_handlers=20, action_cost_seconds=5.0,
                        incidents_per_evaluation=2),
            TeamProfile("Team B", enabled_handlers=5, action_cost_seconds=1.0,
                        incidents_per_evaluation=2),
        ]
        report = DeploymentSimulator(profiles, seed=3).run()
        assert len(report.rows) == 2
        by_team = {row.team: row for row in report.rows}
        assert by_team["Team A"].avg_execution_seconds > by_team["Team B"].avg_execution_seconds
        assert "Table 4" in report.render()

    def test_alert_type_coverage_complete(self):
        coverage = alert_type_coverage()
        assert all(coverage.values())
