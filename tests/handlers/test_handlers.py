"""Tests for handler actions, graphs, registry, serialization and execution."""

from __future__ import annotations

import pytest

from repro.cloudsim import TransportService
from repro.handlers import (
    ActionContext,
    HandlerBuilder,
    HandlerExecutor,
    HandlerNotFoundError,
    HandlerRegistry,
    HandlerValidationError,
    IncidentHandler,
    MitigationAction,
    QueryAction,
    ScopeSwitchAction,
    default_registry,
    delivery_backlog_handler,
    handler_from_json,
    handler_to_json,
    linear_handler,
)
from repro.handlers.handler import HandlerNode
from repro.incidents import Incident, Severity
from repro.monitors import ALERT_TYPES, Alert, AlertScope
from repro.telemetry import TelemetryHub, TimeWindow


def make_incident(alert_type="DiskSpaceLow", machine="m1", scope=AlertScope.MACHINE):
    return Incident(
        incident_id="INC-1",
        title="t",
        created_at=7200.0,
        alert_type=alert_type,
        scope=scope,
        severity=Severity.SEV2,
        forest="forest-01",
        machine=machine,
        alert_message="disk nearly full on m1",
    )


class TestActions:
    def test_scope_switch_picks_busiest_machine(self, hub: TelemetryHub):
        hub.emit_metric("udp_socket_count", "m1", 7000.0, 100.0)
        hub.emit_metric("udp_socket_count", "m2", 7000.0, 9000.0)
        incident = make_incident(scope=AlertScope.FOREST, machine="")
        context = ActionContext.for_incident(incident, hub)
        action = ScopeSwitchAction("switch", AlertScope.MACHINE)
        result = action.execute(context)
        assert context.target_machine == "m2"
        assert result.outcome == "machine"
        assert result.sections

    def test_query_action_error_logs(self, hub: TelemetryHub):
        hub.emit_log(7000.0, "ERROR", "c", "m1", "IOException: disk is full")
        context = ActionContext.for_incident(make_incident(), hub)
        action = QueryAction("io_errors", source="error_logs", pattern="IOException")
        result = action.execute(context)
        assert result.output["io_errors.error_count"] == "1"

    def test_query_action_metrics_scoped_to_machine(self, hub: TelemetryHub):
        hub.emit_metric("disk_usage_percent", "m1", 7000.0, 99.0)
        context = ActionContext.for_incident(make_incident(), hub)
        action = QueryAction("disk", source="metrics", metric_names=["disk_usage_percent"])
        result = action.execute(context)
        assert float(result.output["disk.disk_usage_percent"]) == pytest.approx(99.0)

    def test_query_action_events_and_classifier(self, hub: TelemetryHub):
        from repro.telemetry import SystemEvent

        hub.emit_event(SystemEvent(7000.0, "service_restart", "m1", "delivery", "restart"))
        context = ActionContext.for_incident(make_incident(), hub)
        action = QueryAction(
            "events",
            source="events",
            classify=lambda ctx, table: "restarted" if table.get("count.service_restart") else "no",
        )
        result = action.execute(context)
        assert result.outcome == "restarted"

    def test_query_action_probe(self, hub: TelemetryHub):
        hub.emit_metric("disk_usage_percent", "m1", 7000.0, 99.0)
        context = ActionContext.for_incident(make_incident(), hub)
        action = QueryAction("probe", source="probe:DiskSpaceProbe")
        result = action.execute(context)
        assert result.output["probe.healthy"] == "false"

    def test_query_action_unknown_source(self, hub: TelemetryHub):
        context = ActionContext.for_incident(make_incident(), hub)
        with pytest.raises(ValueError):
            QueryAction("bad", source="not_a_source").execute(context)

    def test_query_action_script(self, hub: TelemetryHub):
        context = ActionContext.for_incident(make_incident(), hub)
        action = QueryAction("script", source="script", script=lambda ctx: {"answer": "42"})
        result = action.execute(context)
        assert result.output["script.answer"] == "42"

    def test_query_action_script_missing_callable(self, hub: TelemetryHub):
        context = ActionContext.for_incident(make_incident(), hub)
        with pytest.raises(ValueError):
            QueryAction("script", source="script").execute(context)

    def test_mitigation_action(self, hub: TelemetryHub):
        context = ActionContext.for_incident(make_incident(), hub)
        result = MitigationAction("fix", "Restart service", engage_team="Store").execute(context)
        assert result.mitigation == "Restart service"
        assert result.output["fix.engage_team"] == "Store"


class TestHandlerGraph:
    def test_builder_and_validation(self):
        handler = (
            HandlerBuilder("DiskSpaceLow", "disk")
            .add("a", QueryAction("q1", source="events"), {"default": "b"})
            .add("b", MitigationAction("m", "fix it"))
            .build()
        )
        assert handler.root == "a"
        assert handler.reachable_nodes() == {"a", "b"}

    def test_duplicate_node_rejected(self):
        builder = HandlerBuilder("X", "x").add("a", MitigationAction("m", "s"))
        with pytest.raises(HandlerValidationError):
            builder.add("a", MitigationAction("m2", "s2"))

    def test_unknown_edge_target_rejected(self):
        handler = IncidentHandler(
            alert_type="X",
            name="x",
            root="a",
            nodes={"a": HandlerNode("a", MitigationAction("m", "s"), {"default": "ghost"})},
        )
        with pytest.raises(HandlerValidationError):
            handler.validate()

    def test_cycle_rejected(self):
        nodes = {
            "a": HandlerNode("a", QueryAction("q", source="events"), {"default": "b"}),
            "b": HandlerNode("b", QueryAction("q2", source="events"), {"default": "a"}),
        }
        handler = IncidentHandler(alert_type="X", name="x", root="a", nodes=nodes)
        with pytest.raises(HandlerValidationError):
            handler.validate()

    def test_missing_root_rejected(self):
        handler = IncidentHandler(alert_type="X", name="x", root="ghost", nodes={})
        with pytest.raises(HandlerValidationError):
            handler.validate()

    def test_linear_handler(self):
        handler = linear_handler("X", "x", [QueryAction("q", source="events"), MitigationAction("m", "s")])
        assert len(handler.nodes) == 2
        with pytest.raises(HandlerValidationError):
            linear_handler("X", "x", [])

    def test_describe_lists_nodes(self):
        handler = delivery_backlog_handler()
        description = handler.describe()
        assert "determine_issue_type" in description


class TestRegistry:
    def test_register_assigns_versions(self):
        registry = HandlerRegistry()
        first = registry.register(linear_handler("X", "x1", [MitigationAction("m", "s")]))
        second = registry.register(linear_handler("X", "x2", [MitigationAction("m", "s")]))
        assert (first.version, second.version) == (1, 2)
        assert registry.latest("X").name == "x2"
        assert len(registry.history("X")) == 2

    def test_match_returns_none_for_unknown(self):
        assert HandlerRegistry().match("Nope") is None

    def test_latest_raises_when_missing(self):
        with pytest.raises(HandlerNotFoundError):
            HandlerRegistry().latest("Nope")

    def test_disable_version(self):
        registry = HandlerRegistry()
        registry.register(linear_handler("X", "x1", [MitigationAction("m", "s")]))
        registry.set_enabled("X", 1, False)
        assert registry.match("X") is None
        assert registry.latest("X", enabled_only=False).name == "x1"
        with pytest.raises(HandlerNotFoundError):
            registry.set_enabled("X", 9, True)

    def test_default_registry_covers_all_alert_types(self, registry):
        assert set(registry.alert_types()) == set(ALERT_TYPES)
        assert registry.enabled_count() == len(ALERT_TYPES)

    def test_action_reuse_counts(self, registry):
        counts = registry.action_reuse_counts()
        assert counts  # at least some actions are shared across handlers


class TestSerialization:
    def test_round_trip_builtin_handlers(self, registry):
        for alert_type in registry.alert_types():
            handler = registry.latest(alert_type)
            document = handler_to_json(handler)
            restored = handler_from_json(document)
            assert restored.alert_type == handler.alert_type
            assert set(restored.nodes) == set(handler.nodes)
            assert restored.root == handler.root

    def test_bad_json_raises(self):
        from repro.handlers import SerializationError

        with pytest.raises(SerializationError):
            handler_from_json("{not json")

    def test_script_action_not_serializable(self):
        from repro.handlers import SerializationError, handler_to_dict

        handler = linear_handler(
            "X", "x", [QueryAction("q", source="script", script=lambda ctx: {})]
        )
        with pytest.raises(SerializationError):
            handler_to_dict(handler)


class TestExecution:
    def test_execute_collects_sections_and_outputs(self, warm_service: TransportService, registry):
        outcome = warm_service.inject_and_detect("FullDisk")
        alert = outcome.primary_alert
        assert alert is not None
        incident = Incident.from_alert("INC-EX", alert)
        handler = registry.match(alert.alert_type)
        result = HandlerExecutor(warm_service.hub).execute(handler, incident)
        assert result.step_count >= 3
        assert len(result.report) >= 3
        assert incident.action_output  # attached back onto the incident
        assert not incident.diagnostic.is_empty()

    def test_figure5_handler_runs_over_backlog(self, registry):
        service = TransportService(seed=77)
        service.warm_up(hours=0.5)
        outcome = service.inject_and_detect("DeliveryHang")
        alert = outcome.primary_alert
        assert alert is not None and alert.alert_type == "DeliveryQueueBacklog"
        incident = Incident.from_alert("INC-F5", alert)
        result = HandlerExecutor(service.hub).execute(
            delivery_backlog_handler(), incident
        )
        executed = [step.action_name for step in result.steps]
        assert executed[0] == "determine_issue_type"
        assert result.elapsed_seconds >= 0.0

    def test_max_steps_guard(self, hub: TelemetryHub):
        from repro.handlers import HandlerExecutionError

        handler = linear_handler("X", "x", [QueryAction("q", source="events")])
        handler.max_steps = 0
        with pytest.raises(HandlerExecutionError):
            HandlerExecutor(hub).execute(handler, make_incident(alert_type="X"))
