"""Tests for incident models, the store, the life-cycle, and recurrence analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.incidents import (
    DiagnosticReport,
    Incident,
    IncidentLifecycle,
    IncidentStage,
    IncidentStore,
    LifecycleError,
    SECONDS_PER_DAY,
    Severity,
    category_occurrence_histogram,
    compute_recurrence_stats,
    incidents_in_new_categories,
    interval_histogram,
    recurrence_intervals_days,
)
from repro.monitors import Alert, AlertScope


def make_incident(iid="INC-1", day=1.0, category="CatA", alert_type="DiskSpaceLow"):
    return Incident(
        incident_id=iid,
        title="t",
        created_at=day * SECONDS_PER_DAY,
        alert_type=alert_type,
        scope=AlertScope.FOREST,
        severity=Severity.SEV2,
        forest="forest-01",
        alert_message="something broke",
        category=category,
    )


class TestIncidentModel:
    def test_from_alert(self):
        alert = Alert(
            alert_id="a1",
            alert_type="DiskSpaceLow",
            scope=AlertScope.MACHINE,
            timestamp=100.0,
            machine="m1",
            forest="f1",
            message="disk full",
            severity=2,
        )
        incident = Incident.from_alert("INC-9", alert)
        assert incident.alert_type == "DiskSpaceLow"
        assert incident.machine == "m1"
        assert incident.severity is Severity.SEV2
        assert "disk full" in incident.alert_info()

    def test_diagnostic_report_rendering(self):
        report = DiagnosticReport()
        assert report.is_empty()
        report.add("Probe", "failed twice", source="probe")
        assert not report.is_empty()
        assert "== Probe ==" in report.render()
        assert len(report) == 1

    def test_best_text_preference_order(self):
        incident = make_incident()
        assert incident.best_text() == incident.alert_info()
        incident.diagnostic.add("Logs", "errors here")
        assert incident.best_text() == incident.diagnostic_info()
        incident.summary = "short summary"
        assert incident.best_text() == "short summary"

    def test_action_output_info(self):
        incident = make_incident()
        assert incident.action_output_info() == ""
        incident.action_output = {"b": "2", "a": "1"}
        assert incident.action_output_info().splitlines() == ["a: 1", "b: 2"]

    def test_with_prediction_copies(self):
        incident = make_incident()
        predicted = incident.with_prediction("CatB", "because")
        assert predicted.predicted_category == "CatB"
        assert incident.predicted_category is None

    def test_created_day(self):
        assert make_incident(day=3.0).created_day == pytest.approx(3.0)


class TestIncidentStore:
    def test_add_and_lookup(self):
        store = IncidentStore()
        store.add(make_incident("INC-1"))
        assert "INC-1" in store
        assert store.get("INC-1") is not None
        assert store.get("INC-404") is None

    def test_duplicate_id_rejected(self):
        store = IncidentStore([make_incident("INC-1")])
        with pytest.raises(ValueError):
            store.add(make_incident("INC-1"))

    def test_chronological_iteration(self):
        store = IncidentStore()
        store.add(make_incident("INC-2", day=5.0))
        store.add(make_incident("INC-1", day=1.0))
        assert [i.incident_id for i in store] == ["INC-1", "INC-2"]

    def test_category_and_alert_type_indices(self):
        store = IncidentStore(
            [
                make_incident("INC-1", category="A", alert_type="X"),
                make_incident("INC-2", category="B", alert_type="X"),
                make_incident("INC-3", category="A", alert_type="Y"),
            ]
        )
        assert store.categories() == ["A", "B"]
        assert len(store.by_category("A")) == 2
        assert len(store.by_alert_type("X")) == 2
        assert store.category_counts() == {"A": 2, "B": 1}

    def test_between_and_before(self):
        store = IncidentStore([make_incident(f"INC-{i}", day=float(i)) for i in range(1, 6)])
        assert len(store.between(2 * SECONDS_PER_DAY, 4 * SECONDS_PER_DAY)) == 3
        assert len(store.before(3 * SECONDS_PER_DAY)) == 2

    def test_relabel(self):
        store = IncidentStore([make_incident("INC-1", category="A")])
        store.relabel("INC-1", "B")
        assert store.by_category("B")
        assert not store.by_category("A")
        with pytest.raises(KeyError):
            store.relabel("INC-404", "C")

    def test_chronological_split_sizes(self):
        store = IncidentStore([make_incident(f"INC-{i}", day=float(i)) for i in range(20)])
        train, test = store.chronological_split(0.75)
        assert len(train) == 15 and len(test) == 5
        assert max(i.created_at for i in train) <= min(i.created_at for i in test)

    def test_split_invalid_fraction(self):
        store = IncidentStore([make_incident("INC-1")])
        with pytest.raises(ValueError):
            store.chronological_split(1.5)


class TestLifecycle:
    def test_normal_progression(self):
        lifecycle = IncidentLifecycle("INC-1")
        lifecycle.triage(at=10.0, team="Transport")
        lifecycle.start_diagnosis(at=20.0)
        lifecycle.start_mitigation(at=30.0, action="restart")
        lifecycle.resolve(at=40.0)
        assert lifecycle.is_resolved
        assert lifecycle.time_to_resolve() == 40.0
        assert lifecycle.duration(IncidentStage.DIAGNOSING) == 10.0

    def test_illegal_transition(self):
        lifecycle = IncidentLifecycle("INC-1")
        with pytest.raises(LifecycleError):
            lifecycle.resolve(at=10.0)

    def test_time_cannot_go_backwards(self):
        lifecycle = IncidentLifecycle("INC-1")
        lifecycle.triage(at=10.0)
        with pytest.raises(LifecycleError):
            lifecycle.start_diagnosis(at=5.0)

    def test_unresolved_durations(self):
        lifecycle = IncidentLifecycle("INC-1")
        assert lifecycle.time_to_resolve() is None
        assert lifecycle.duration(IncidentStage.DETECTED) is None


class TestRecurrence:
    def test_intervals_within_category_only(self):
        incidents = [
            make_incident("INC-1", day=1.0, category="A"),
            make_incident("INC-2", day=3.0, category="A"),
            make_incident("INC-3", day=10.0, category="B"),
        ]
        intervals = recurrence_intervals_days(incidents)
        assert intervals == [2.0]

    def test_stats_counts_new_categories(self):
        incidents = [
            make_incident("INC-1", day=1.0, category="A"),
            make_incident("INC-2", day=2.0, category="A"),
            make_incident("INC-3", day=3.0, category="B"),
        ]
        stats = compute_recurrence_stats(incidents)
        assert stats.total_incidents == 3
        assert stats.new_category_incidents == 2
        assert stats.recurring_incidents == 1
        assert stats.new_category_fraction == pytest.approx(2 / 3)

    def test_interval_histogram_probabilities_sum_to_at_most_one(self):
        bins = interval_histogram([1.0, 2.0, 30.0, 200.0], bin_days=5.0, max_days=100.0)
        total = sum(p for _, p in bins)
        assert 0.0 <= total <= 1.0

    def test_interval_histogram_invalid_bin(self):
        with pytest.raises(ValueError):
            interval_histogram([1.0], bin_days=0.0)

    def test_category_occurrence_histogram_buckets(self):
        incidents = [make_incident(f"INC-{i}", category="A") for i in range(12)]
        incidents.append(make_incident("INC-x", category="B"))
        histogram = category_occurrence_histogram(incidents, cap=10)
        assert histogram[">=10"] == 1
        assert histogram["1"] == 1

    def test_incidents_in_new_categories_returns_first_of_each(self):
        incidents = [
            make_incident("INC-1", day=2.0, category="A"),
            make_incident("INC-0", day=1.0, category="A"),
            make_incident("INC-3", day=3.0, category="B"),
        ]
        firsts = incidents_in_new_categories(incidents)
        assert [i.incident_id for i in firsts] == ["INC-0", "INC-3"]

    @given(
        st.lists(
            st.tuples(st.sampled_from(["A", "B", "C"]), st.floats(min_value=0, max_value=300)),
            min_size=1,
            max_size=40,
        )
    )
    def test_recurring_plus_new_equals_total(self, pairs):
        incidents = [
            make_incident(f"INC-{i}", day=day, category=cat)
            for i, (cat, day) in enumerate(pairs)
        ]
        stats = compute_recurrence_stats(incidents)
        assert stats.new_category_incidents + stats.recurring_incidents == stats.total_incidents
        assert 0.0 <= stats.fraction_within_20_days <= 1.0
