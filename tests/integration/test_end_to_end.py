"""Integration tests: the full two-stage pipeline over the simulator and corpus."""

from __future__ import annotations

import pytest

from repro.cloudsim import TransportService
from repro.core import PredictionConfig, PredictionStage, RCACopilot
from repro.datagen import generate_corpus
from repro.eval import f1_report
from repro.llm import SimulatedLLM


@pytest.fixture(scope="module")
def pipeline_corpus():
    """A compact corpus large enough for meaningful end-to-end accuracy."""
    return generate_corpus(
        total_incidents=140, total_categories=35, seed=41, duration_days=150.0
    )


class TestEndToEndPrediction:
    def test_pipeline_beats_trivial_baselines_on_recurring_categories(self, pipeline_corpus):
        train, test = pipeline_corpus.chronological_split(0.75)
        stage = PredictionStage(model=SimulatedLLM(), config=PredictionConfig())
        stage.index_history(train)
        truths, predictions = [], []
        for incident in test.labelled():
            predictions.append(stage.predict(incident).label)
            truths.append(incident.category or "")
            stage.add_to_index(incident)
        report = f1_report(truths, predictions)
        # Majority-class baseline on this split scores well under 0.2; the
        # pipeline must do substantially better on recurring categories.
        assert report.micro_f1 > 0.35
        labelled = [t for t in truths]
        majority = max(set(labelled), key=labelled.count)
        majority_report = f1_report(truths, [majority] * len(truths))
        assert report.micro_f1 > majority_report.micro_f1

    def test_predictions_only_use_known_or_new_labels(self, pipeline_corpus):
        train, test = pipeline_corpus.chronological_split(0.75)
        stage = PredictionStage(model=SimulatedLLM(), config=PredictionConfig())
        stage.index_history(train)
        known = set(train.categories())
        for incident in test.labelled()[:20]:
            outcome = stage.predict(incident)
            if not outcome.prediction.is_unseen:
                assert outcome.label in known or outcome.label in stage.vector_store.categories()


class TestSimulatorToPrediction:
    def test_alert_to_explained_prediction(self):
        service = TransportService(seed=71)
        service.warm_up(hours=0.5)
        copilot = RCACopilot(service.hub)
        history = generate_corpus(
            total_incidents=80, total_categories=22, seed=13, duration_days=100.0
        )
        copilot.index_history(history)
        for category in ("HubPortExhaustion", "FullDisk"):
            outcome = service.inject_and_detect(category)
            assert outcome.primary_alert is not None
            report = copilot.observe(outcome.primary_alert)
            assert report.collection.collected
            assert report.prediction is not None
            assert report.explanation
            rendered = report.render()
            assert report.incident.incident_id in rendered

    def test_unseen_incident_gets_new_category_label(self):
        """The Section 5.3 case: an incident type absent from history."""
        service = TransportService(seed=99)
        service.warm_up(hours=0.5)
        copilot = RCACopilot(service.hub)
        history = generate_corpus(
            total_incidents=60, total_categories=16, seed=17, duration_days=90.0
        )
        # Remove every FullDisk incident from history so the category is unseen.
        from repro.incidents import IncidentStore

        filtered = IncidentStore(
            [i for i in history if i.category not in ("FullDisk",)]
        )
        copilot.index_history(filtered)
        outcome = service.inject_and_detect("FullDisk")
        report = copilot.observe(outcome.primary_alert)
        assert report.prediction is not None
        # Either the model flags it as unseen with a fresh label, or it maps it
        # onto a lexically close disk/IO category - both are acceptable
        # behaviours; what must not happen is an empty label.
        assert report.predicted_label
