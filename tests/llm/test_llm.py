"""Tests for the tokenizer, simulated LLM, prompts, summarizer, CoT and fine-tuning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm import (
    ChainOfThoughtPredictor,
    ChatMessage,
    Demonstration,
    DiagnosticSummarizer,
    FineTunedModel,
    FineTuneExample,
    SimulatedLLM,
    Tokenizer,
    build_direct_prediction_prompt,
    build_prediction_prompt,
    build_summarization_prompt,
    count_tokens,
    parse_prediction,
    truncate_tokens,
)
from repro.llm.prompts import PREDICTION_CONTEXT, SUMMARIZE_INSTRUCTION


class TestTokenizer:
    def test_counts_positive(self):
        assert count_tokens("hello world") == 2

    def test_long_words_split(self):
        tokenizer = Tokenizer()
        assert tokenizer.count("internationalization") > 1

    def test_truncate_respects_budget(self):
        text = " ".join(["word"] * 200)
        truncated = truncate_tokens(text, 50)
        assert count_tokens(truncated) <= 50

    def test_truncate_zero(self):
        assert truncate_tokens("anything", 0) == ""

    def test_truncate_noop_when_short(self):
        assert truncate_tokens("short text", 100) == "short text"

    @given(st.text(max_size=300))
    @settings(max_examples=50)
    def test_count_never_negative_and_empty_is_zero(self, text):
        assert count_tokens(text) >= 0
        assert count_tokens("") == 0


class TestPrompts:
    def test_summarization_prompt_contains_instruction(self):
        prompt = build_summarization_prompt("diagnostic body")
        assert SUMMARIZE_INSTRUCTION in prompt
        assert "diagnostic body" in prompt

    def test_prediction_prompt_structure(self):
        demos = [
            Demonstration("INC-1", "socket exhaustion details", "HubPortExhaustion", 0.9),
            Demonstration("INC-2", "disk full details", "FullDisk", 0.5),
        ]
        prompt = build_prediction_prompt("query incident text", demos)
        assert prompt.text.startswith(PREDICTION_CONTEXT)
        assert "A: Unseen incident." in prompt.text
        assert "category: HubPortExhaustion." in prompt.text
        assert prompt.category_for("A") is None
        assert prompt.category_for("B") == "HubPortExhaustion"
        assert prompt.category_for("C") == "FullDisk"

    def test_too_many_demonstrations_rejected(self):
        demos = [Demonstration(f"i{n}", "x", f"c{n}") for n in range(30)]
        with pytest.raises(ValueError):
            build_prediction_prompt("q", demos)

    def test_parse_prediction_falls_back_to_unseen(self):
        demos = [Demonstration("INC-1", "text", "Cat")]
        prompt = build_prediction_prompt("q", demos)
        parsed = parse_prediction("garbage with no letter", prompt)
        assert parsed.letter == "A"
        assert parsed.is_unseen

    def test_parse_prediction_extracts_choice_and_explanation(self):
        demos = [Demonstration("INC-1", "text", "Cat")]
        prompt = build_prediction_prompt("q", demos)
        parsed = parse_prediction("B: text category: Cat.\nExplanation: matches tokens", prompt)
        assert parsed.letter == "B"
        assert parsed.category == "Cat"
        assert "matches" in parsed.explanation

    def test_direct_prompt(self):
        prompt = build_direct_prediction_prompt("some incident")
        assert "Category:" in prompt


DIAG_TEXT = "\n".join(
    [
        "== Probe results ==",
        "DatacenterHubOutboundProxyProbe probe result from [m1].",
        "Total Probes: 2, Failed Probes: 2",
        "Failed probe error: No such host is known WinSock error 11001",
        "== Error logs ==",
        "InformativeSocketException: No such host is known at TcpClientFactory.Create",
        "== Key metrics ==",
        "Total UDP socket count : 15276",
        "14923: Transport.exe, 203736",
    ]
    + [f"routine noise line {i} nothing interesting happened here today" for i in range(40)]
)


class TestSimulatedLLM:
    def test_summarization_respects_budget(self):
        model = SimulatedLLM()
        summarizer = DiagnosticSummarizer(model)
        result = summarizer.summarize(DIAG_TEXT)
        assert result.word_count <= 140
        assert "socket" in result.text.lower() or "winsock" in result.text.lower()

    def test_short_input_passthrough(self):
        model = SimulatedLLM()
        summarizer = DiagnosticSummarizer(model)
        result = summarizer.summarize("short diagnostic info")
        assert result.text == "short diagnostic info"

    def test_invalid_summary_budget(self):
        with pytest.raises(ValueError):
            DiagnosticSummarizer(SimulatedLLM(), min_words=0)
        with pytest.raises(ValueError):
            DiagnosticSummarizer(SimulatedLLM(), min_words=100, max_words=50)

    def test_multiple_choice_picks_lexically_matching_option(self):
        model = SimulatedLLM()
        demos = [
            Demonstration(
                "INC-1",
                "WinSock error 11001 UDP socket count 15000 Transport.exe exhaustion",
                "HubPortExhaustion",
            ),
            Demonstration(
                "INC-2",
                "System.IO.IOException not enough space on the disk crash",
                "FullDisk",
            ),
        ]
        predictor = ChainOfThoughtPredictor(model)
        prediction = predictor.predict(DIAG_TEXT, demos)
        assert prediction.category == "HubPortExhaustion"
        assert not prediction.is_unseen
        assert prediction.explanation

    def test_unseen_incident_generates_new_label(self):
        model = SimulatedLLM()
        demos = [
            Demonstration("INC-1", "certificate thumbprint mismatch token", "AuthCertIssue"),
            Demonstration("INC-2", "poison message routing crash", "UseRouteResolution"),
        ]
        disk_text = (
            "System.IO.IOException: There is not enough space on the disk "
            "at DiagnosticsLog.Write QueueManager.Persist worker crashed IO exceptions"
        )
        predictor = ChainOfThoughtPredictor(model)
        prediction = predictor.predict(disk_text, demos)
        assert prediction.is_unseen
        assert prediction.new_category  # e.g. IoBottleneck
        assert prediction.label == prediction.new_category

    def test_direct_prediction_without_demos(self):
        prediction = ChainOfThoughtPredictor(SimulatedLLM()).predict(DIAG_TEXT, [])
        assert prediction.chosen_letter == "-"
        assert prediction.label

    def test_usage_tracking(self):
        model = SimulatedLLM()
        model.complete([ChatMessage("user", build_summarization_prompt(DIAG_TEXT))])
        assert model.usage.calls == 1
        assert model.usage.prompt_tokens > 0

    def test_noise_changes_some_answers(self):
        noisy = SimulatedLLM(noise=1.0, seed=1)
        demos = [
            Demonstration("INC-1", "WinSock socket exhaustion Transport.exe", "HubPortExhaustion"),
            Demonstration("INC-2", "disk full IOException", "FullDisk"),
        ]
        prediction = ChainOfThoughtPredictor(noisy).predict(DIAG_TEXT, demos)
        # With noise=1.0 the runner-up is always taken instead of the best.
        assert prediction.category != "HubPortExhaustion" or prediction.is_unseen


class TestFineTunedModel:
    def test_finetune_and_predict(self):
        model = FineTunedModel()
        job = model.finetune(
            [
                FineTuneExample("socket exhaustion WinSock UDP", "HubPortExhaustion"),
                FineTuneExample("socket count exceeded proxy failure", "HubPortExhaustion"),
                FineTuneExample("disk full IOException no space", "FullDisk"),
                FineTuneExample("IO exception disk usage crash", "FullDisk"),
            ]
        )
        assert job.examples == 4 and job.labels == 2
        assert model.predict_label("UDP socket exhaustion seen") == "HubPortExhaustion"
        assert model.predict_label("disk has no space IOException") == "FullDisk"
        assert set(model.labels) == {"HubPortExhaustion", "FullDisk"}

    def test_complete_interface(self):
        model = FineTunedModel()
        model.finetune([FineTuneExample("a b c", "X"), FineTuneExample("d e f", "Y")])
        result = model.complete([ChatMessage("user", "a b c")])
        assert result.text == "Category: X"

    def test_empty_finetune_rejected(self):
        with pytest.raises(ValueError):
            FineTunedModel().finetune([])

    def test_predict_before_finetune(self):
        with pytest.raises(RuntimeError):
            FineTunedModel().predict_label("x")
