"""Tests for alert routing, probes, and watchdog monitors."""

from __future__ import annotations

import pytest

from repro.monitors import (
    ALERT_TYPES,
    Alert,
    AlertRouter,
    AlertScope,
    CrashSpikeMonitor,
    DEFAULT_PROBES,
    ErrorLogMonitor,
    MetricThresholdMonitor,
    MonitorSuite,
    ThresholdRule,
    default_monitor_suite,
)
from repro.telemetry import SystemEvent, TelemetryHub, TimeWindow


def make_alert(router, alert_type="DiskSpaceLow", ts=100.0, machine="m1", forest="f1"):
    return Alert(
        alert_id=router.next_alert_id(),
        alert_type=alert_type,
        scope=AlertScope.MACHINE,
        timestamp=ts,
        machine=machine,
        forest=forest,
        message="disk nearly full",
        severity=2,
    )


class TestAlertScope:
    def test_narrower_and_wider(self):
        assert AlertScope.FOREST.narrower() is AlertScope.MACHINE
        assert AlertScope.MACHINE.narrower() is AlertScope.MACHINE
        assert AlertScope.FOREST.wider() is AlertScope.SERVICE
        assert AlertScope.SERVICE.wider() is AlertScope.SERVICE


class TestAlertRouter:
    def test_routes_first_alert(self):
        router = AlertRouter()
        alert = make_alert(router)
        assert router.submit(alert) is alert
        assert router.suppressed_count == 0

    def test_suppresses_duplicates_within_window(self):
        router = AlertRouter(dedup_window=900.0)
        router.submit(make_alert(router, ts=100.0))
        assert router.submit(make_alert(router, ts=200.0)) is None
        assert router.suppressed_count == 1

    def test_allows_after_window(self):
        router = AlertRouter(dedup_window=100.0)
        router.submit(make_alert(router, ts=100.0))
        assert router.submit(make_alert(router, ts=500.0)) is not None

    def test_different_targets_not_deduped(self):
        router = AlertRouter()
        router.submit(make_alert(router, machine="m1"))
        assert router.submit(make_alert(router, machine="m2")) is not None

    def test_submit_all(self):
        router = AlertRouter()
        alerts = [make_alert(router, ts=100.0), make_alert(router, ts=150.0)]
        routed = router.submit_all(alerts)
        assert len(routed) == 1

    def test_alert_summary_mentions_type(self):
        router = AlertRouter()
        alert = make_alert(router)
        assert "DiskSpaceLow" in alert.summary()


class TestProbes:
    def test_default_probe_suite_members(self):
        assert "DatacenterHubOutboundProxyProbe" in DEFAULT_PROBES
        assert "DiskSpaceProbe" in DEFAULT_PROBES

    def test_outbound_proxy_probe_detects_winsock_errors(self, hub: TelemetryHub):
        hub.emit_log(10.0, "ERROR", "proxy", "m1", "WinSock error: 11001 at Connect")
        hub.emit_metric("udp_socket_count", "m1", 10.0, 15000.0)
        probe = DEFAULT_PROBES["DatacenterHubOutboundProxyProbe"]
        result = probe.run(hub, "m1", TimeWindow(0.0, 20.0))
        assert not result.healthy
        assert "15000" in result.render()

    def test_disk_probe_threshold(self, hub: TelemetryHub):
        hub.emit_metric("disk_usage_percent", "m1", 10.0, 99.0)
        probe = DEFAULT_PROBES["DiskSpaceProbe"]
        result = probe.run(hub, "m1", TimeWindow(0.0, 20.0))
        assert not result.healthy
        hub.emit_metric("disk_usage_percent", "m2", 10.0, 20.0)
        assert probe.run(hub, "m2", TimeWindow(0.0, 20.0)).healthy

    def test_delivery_health_probe(self, hub: TelemetryHub):
        hub.emit_metric("delivery_queue_length", "m1", 10.0, 5000.0)
        probe = DEFAULT_PROBES["MailboxDeliveryHealthProbe"]
        assert not probe.run(hub, "m1", TimeWindow(0.0, 20.0)).healthy

    def test_certificate_probe(self, hub: TelemetryHub):
        hub.emit_log(10.0, "ERROR", "auth", "m1", "invalid certificate thumbprint")
        probe = DEFAULT_PROBES["AuthCertificateProbe"]
        assert not probe.run(hub, "m1", TimeWindow(0.0, 20.0)).healthy

    def test_probe_result_render_shape(self, hub: TelemetryHub):
        probe = DEFAULT_PROBES["DiskSpaceProbe"]
        rendered = probe.run(hub, "m1", TimeWindow(0.0, 20.0)).render()
        assert "Total Probes" in rendered


class TestMonitors:
    def test_metric_threshold_monitor_raises_alert(self, hub: TelemetryHub):
        hub.emit_metric("disk_usage_percent", "m1", 10.0, 99.0)
        monitor = MetricThresholdMonitor(
            "DiskSpaceLow",
            ThresholdRule("disk_usage_percent", 95.0, AlertScope.FOREST, 2, "disk full"),
            forest_of={"m1": "f1"},
        )
        router = AlertRouter()
        alerts = monitor.evaluate(hub, TimeWindow(0.0, 20.0), router)
        assert len(alerts) == 1
        assert alerts[0].alert_type == "DiskSpaceLow"
        assert alerts[0].forest == "f1"

    def test_metric_threshold_monitor_quiet_below_threshold(self, hub: TelemetryHub):
        hub.emit_metric("disk_usage_percent", "m1", 10.0, 50.0)
        monitor = MetricThresholdMonitor(
            "DiskSpaceLow",
            ThresholdRule("disk_usage_percent", 95.0, AlertScope.FOREST, 2, "disk full"),
        )
        assert monitor.evaluate(hub, TimeWindow(0.0, 20.0), AlertRouter()) == []

    def test_error_log_monitor_counts_matches(self, hub: TelemetryHub):
        for i in range(3):
            hub.emit_log(float(i), "ERROR", "auth", "m1", "token creation failed")
        monitor = ErrorLogMonitor(
            "AuthTokenFailure", "token", 3, AlertScope.FOREST, 1, "token failures"
        )
        alerts = monitor.evaluate(hub, TimeWindow(0.0, 20.0), AlertRouter())
        assert len(alerts) == 1
        assert alerts[0].severity == 1

    def test_error_log_monitor_below_min_count(self, hub: TelemetryHub):
        hub.emit_log(1.0, "ERROR", "auth", "m1", "token creation failed")
        monitor = ErrorLogMonitor(
            "AuthTokenFailure", "token", 3, AlertScope.FOREST, 1, "token failures"
        )
        assert monitor.evaluate(hub, TimeWindow(0.0, 20.0), AlertRouter()) == []

    def test_crash_spike_monitor(self, hub: TelemetryHub):
        for i in range(6):
            hub.emit_event(
                SystemEvent(float(i), "process_crash", f"m{i % 2}", "worker", "crash")
            )
        monitor = CrashSpikeMonitor(crash_threshold=5, forest_of={"m0": "f1", "m1": "f1"})
        alerts = monitor.evaluate(hub, TimeWindow(0.0, 20.0), AlertRouter())
        assert len(alerts) == 1
        assert alerts[0].scope is AlertScope.FOREST

    def test_default_suite_covers_all_alert_types(self):
        suite = default_monitor_suite({})
        covered = {m.alert_type for m in suite.monitors}
        assert covered == set(ALERT_TYPES)

    def test_monitor_suite_sweep(self, hub: TelemetryHub):
        hub.emit_metric("disk_usage_percent", "m1", 500.0, 99.0)
        suite = default_monitor_suite({"m1": "f1"})
        alerts = suite.sweep(hub, 0.0, 1000.0, step=250.0)
        assert any(a.alert_type == "DiskSpaceLow" for a in alerts)
