"""Tests for the event store and the unified telemetry hub."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    EventStore,
    LogLevel,
    SystemEvent,
    TelemetryHub,
    TimeWindow,
)


def make_event(ts: float, kind="process_crash", machine="m1", component="worker"):
    return SystemEvent(timestamp=ts, kind=kind, machine=machine, component=component, detail="d")


class TestEventStore:
    def test_add_keeps_sorted(self):
        store = EventStore()
        store.add(make_event(5.0))
        store.add(make_event(1.0))
        assert [e.timestamp for e in store] == [1.0, 5.0]

    def test_query_filters(self):
        store = EventStore()
        store.extend(
            [
                make_event(1.0, kind="deployment"),
                make_event(2.0, kind="process_crash", machine="m2"),
                make_event(3.0, kind="process_crash"),
            ]
        )
        assert len(store.query(kind="process_crash")) == 2
        assert len(store.query(machine="m2")) == 1
        assert len(store.query(start=2.5)) == 1
        assert len(store.query(component="worker")) == 3

    def test_count_and_last(self):
        store = EventStore()
        store.extend([make_event(1.0), make_event(4.0)])
        assert store.count("process_crash") == 2
        assert store.last("process_crash").timestamp == 4.0
        assert store.last("deployment") is None

    def test_recent_restarts(self):
        store = EventStore()
        store.add(make_event(100.0, kind="service_restart", component="delivery"))
        assert len(store.recent_restarts("delivery", now=200.0, window=150.0)) == 1
        assert store.recent_restarts("delivery", now=2000.0, window=100.0) == []

    def test_crash_counts_by_machine(self):
        store = EventStore()
        store.extend([make_event(1.0), make_event(2.0), make_event(3.0, machine="m2")])
        counts = store.crash_counts_by_machine()
        assert counts == {"m1": 2, "m2": 1}

    def test_deployments_and_config_changes(self):
        store = EventStore()
        store.add(make_event(1.0, kind="deployment"))
        store.add(make_event(2.0, kind="config_change"))
        assert len(store.deployments_between(0.0, 5.0)) == 1
        assert len(store.config_changes_between(0.0, 5.0)) == 1

    def test_render(self):
        assert "EVENT" in make_event(1.0).render()


class TestTimeWindow:
    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            TimeWindow(10.0, 5.0)

    def test_contains_and_duration(self):
        window = TimeWindow(0.0, 10.0)
        assert window.duration == 10.0
        assert window.contains(5.0)
        assert not window.contains(11.0)

    def test_widened(self):
        window = TimeWindow(5.0, 10.0).widened(2.0)
        assert (window.start, window.end) == (3.0, 12.0)


class TestTelemetryHub:
    def test_emit_and_snapshot(self, hub: TelemetryHub):
        hub.emit_log(10.0, "ERROR", "comp", "m1", "WinSock error")
        hub.emit_metric("udp_socket_count", "m1", 10.0, 15000.0)
        hub.emit_event(make_event(10.0, machine="m1"))
        snapshot = hub.snapshot(TimeWindow(0.0, 20.0), machine="m1")
        assert len(snapshot.logs) == 1
        assert snapshot.metrics["udp_socket_count"] == 15000.0
        assert len(snapshot.events) == 1
        assert not snapshot.is_empty()

    def test_snapshot_scope_excludes_other_machines(self, hub: TelemetryHub):
        hub.emit_log(10.0, "ERROR", "comp", "other", "boom")
        snapshot = hub.snapshot(TimeWindow(0.0, 20.0), machine="m1")
        assert snapshot.is_empty()

    def test_snapshot_respects_min_level(self, hub: TelemetryHub):
        hub.emit_log(10.0, "INFO", "comp", "m1", "hello")
        snapshot = hub.snapshot(TimeWindow(0.0, 20.0), machine="m1", min_level=LogLevel.WARNING)
        assert snapshot.logs == []

    def test_busiest_machine(self, hub: TelemetryHub):
        hub.emit_metric("udp_socket_count", "m1", 5.0, 100.0)
        hub.emit_metric("udp_socket_count", "m2", 5.0, 900.0)
        busiest = hub.busiest_machine("udp_socket_count", TimeWindow(0.0, 10.0))
        assert busiest[0] == "m2"

    def test_busiest_machine_empty(self, hub: TelemetryHub):
        assert hub.busiest_machine("missing", TimeWindow(0.0, 10.0)) is None

    def test_error_summary(self, hub: TelemetryHub):
        hub.emit_log(1.0, "ERROR", "comp", "m1", "disk full 1")
        hub.emit_log(2.0, "ERROR", "comp", "m1", "disk full 2")
        summary = hub.error_summary(TimeWindow(0.0, 10.0))
        assert summary[0][1] == 2

    def test_describe(self, hub: TelemetryHub):
        assert "TelemetryHub" in hub.describe()
