"""Tests for the log store."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.telemetry import LogLevel, LogRecord, LogStore
from repro.telemetry.logs import filter_records, normalize_message


def make_record(ts: float, level=LogLevel.ERROR, machine="m1", component="c1", msg="boom"):
    return LogRecord(timestamp=ts, level=level, component=component, machine=machine, message=msg)


class TestLogLevel:
    def test_parse_from_name(self):
        assert LogLevel.parse("error") is LogLevel.ERROR
        assert LogLevel.parse("CRITICAL") is LogLevel.CRITICAL

    def test_parse_from_int_and_level(self):
        assert LogLevel.parse(20) is LogLevel.INFO
        assert LogLevel.parse(LogLevel.DEBUG) is LogLevel.DEBUG

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            LogLevel.parse("noise")

    def test_ordering(self):
        assert LogLevel.DEBUG < LogLevel.ERROR < LogLevel.CRITICAL


class TestLogStore:
    def test_append_and_len(self):
        store = LogStore()
        store.append(make_record(1.0))
        store.append(make_record(2.0))
        assert len(store) == 2

    def test_query_time_window(self):
        store = LogStore()
        store.extend(make_record(float(i)) for i in range(10))
        result = store.query(start=3.0, end=6.0)
        assert [r.timestamp for r in result] == [3.0, 4.0, 5.0, 6.0]

    def test_query_by_machine_and_component(self):
        store = LogStore()
        store.append(make_record(1.0, machine="a", component="x"))
        store.append(make_record(2.0, machine="b", component="x"))
        store.append(make_record(3.0, machine="a", component="y"))
        assert len(store.query(machine="a")) == 2
        assert len(store.query(component="x")) == 2
        assert len(store.query(machine="a", component="x")) == 1

    def test_query_min_level(self):
        store = LogStore()
        store.append(make_record(1.0, level=LogLevel.INFO))
        store.append(make_record(2.0, level=LogLevel.ERROR))
        assert len(store.query(min_level=LogLevel.WARNING)) == 1

    def test_query_pattern_case_insensitive(self):
        store = LogStore()
        store.append(make_record(1.0, msg="WinSock error 11001"))
        store.append(make_record(2.0, msg="all good"))
        assert len(store.query(pattern="winsock")) == 1

    def test_query_limit_keeps_most_recent(self):
        store = LogStore()
        store.extend(make_record(float(i)) for i in range(5))
        result = store.query(limit=2)
        assert [r.timestamp for r in result] == [3.0, 4.0]

    def test_out_of_order_append_is_resorted(self):
        store = LogStore()
        store.append(make_record(5.0))
        store.append(make_record(1.0))
        assert [r.timestamp for r in store.query()] == [1.0, 5.0]

    def test_machines_and_components_listing(self):
        store = LogStore()
        store.append(make_record(1.0, machine="b", component="y"))
        store.append(make_record(2.0, machine="a", component="x"))
        assert store.machines() == ["a", "b"]
        assert store.components() == ["x", "y"]

    def test_count_by_level(self):
        store = LogStore()
        store.append(make_record(1.0, level=LogLevel.ERROR))
        store.append(make_record(2.0, level=LogLevel.ERROR))
        store.append(make_record(3.0, level=LogLevel.INFO))
        counts = store.count_by_level()
        assert counts["ERROR"] == 2
        assert counts["INFO"] == 1

    def test_error_signatures_group_numbers(self):
        store = LogStore()
        store.append(make_record(1.0, msg="timeout after 30 seconds"))
        store.append(make_record(2.0, msg="timeout after 45 seconds"))
        signatures = store.error_signatures()
        assert signatures[0][1] == 2
        assert "<num>" in signatures[0][0]

    def test_tail(self):
        store = LogStore()
        store.extend(make_record(float(i)) for i in range(10))
        assert len(store.tail(3)) == 3
        assert store.tail(3)[-1].timestamp == 9.0


class TestNormalization:
    def test_normalize_replaces_guids_hex_numbers(self):
        msg = "failed 0xdeadbeef 42 0f8fad5b-d9cb-469f-a165-70867728950e"
        normalized = normalize_message(msg)
        assert "<hex>" in normalized
        assert "<num>" in normalized
        assert "<guid>" in normalized

    @given(st.text(max_size=200))
    def test_normalize_is_idempotent(self, text):
        once = normalize_message(text)
        assert normalize_message(once) == once

    def test_filter_records(self):
        records = [make_record(1.0), make_record(2.0, level=LogLevel.INFO)]
        errors = filter_records(records, lambda r: r.level >= LogLevel.ERROR)
        assert len(errors) == 1

    def test_render_contains_fields(self):
        record = LogRecord(1.0, LogLevel.ERROR, "c", "m", "msg", fields={"k": "v"})
        assert "k=v" in record.render()
