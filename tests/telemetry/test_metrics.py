"""Tests for the metric store."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.telemetry import MetricSeries, MetricStore, summarize_series
from repro.telemetry.metrics import merge_stores


class TestMetricSeries:
    def test_add_and_points(self):
        series = MetricSeries("cpu", "m1")
        series.add(1.0, 10.0)
        series.add(2.0, 20.0)
        assert len(series) == 2
        assert [p.value for p in series.points()] == [10.0, 20.0]

    def test_out_of_order_insertion(self):
        series = MetricSeries("cpu", "m1")
        series.add(5.0, 50.0)
        series.add(1.0, 10.0)
        assert [p.timestamp for p in series.points()] == [1.0, 5.0]

    def test_window_queries(self):
        series = MetricSeries("cpu", "m1")
        for i in range(10):
            series.add(float(i), float(i) * 2)
        assert series.values(start=2.0, end=4.0) == [4.0, 6.0, 8.0]

    def test_latest_empty_and_nonempty(self):
        series = MetricSeries("cpu", "m1")
        assert series.latest() is None
        series.add(1.0, 3.0)
        assert series.latest().value == 3.0

    def test_aggregations(self):
        series = MetricSeries("cpu", "m1")
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            series.add(float(i), v)
        assert series.mean() == pytest.approx(2.5)
        assert series.maximum() == 4.0
        assert series.minimum() == 1.0
        assert series.stddev() == pytest.approx(1.118, abs=1e-3)

    def test_rate(self):
        series = MetricSeries("count", "m1")
        series.add(0.0, 0.0)
        series.add(10.0, 100.0)
        assert series.rate() == pytest.approx(10.0)

    def test_rate_degenerate(self):
        series = MetricSeries("count", "m1")
        series.add(1.0, 5.0)
        assert series.rate() == 0.0

    def test_zscore_anomalies(self):
        series = MetricSeries("cpu", "m1")
        for i in range(20):
            series.add(float(i), 10.0)
        series.add(20.0, 1000.0)
        anomalies = series.zscore_anomalies(threshold=3.0)
        assert len(anomalies) == 1
        assert anomalies[0].value == 1000.0

    def test_zscore_no_variance(self):
        series = MetricSeries("cpu", "m1")
        for i in range(5):
            series.add(float(i), 1.0)
        assert series.zscore_anomalies() == []

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_mean_between_min_and_max(self, values):
        series = MetricSeries("x", "m")
        for i, v in enumerate(values):
            series.add(float(i), v)
        assert series.minimum() <= series.mean() <= series.maximum()


class TestMetricStore:
    def test_record_and_series(self):
        store = MetricStore()
        store.record("cpu", "m1", 1.0, 10.0)
        store.record("cpu", "m2", 1.0, 30.0)
        assert len(store) == 2
        assert store.latest("cpu", "m1") == 10.0
        assert store.latest("cpu", "missing") is None

    def test_metric_and_machine_listings(self):
        store = MetricStore()
        store.record("cpu", "m1", 1.0, 1.0)
        store.record("disk", "m2", 1.0, 2.0)
        assert store.metric_names() == ["cpu", "disk"]
        assert store.machines() == ["m1", "m2"]

    def test_aggregate_modes(self):
        store = MetricStore()
        for t, v in [(1.0, 1.0), (2.0, 5.0)]:
            store.record("cpu", "m1", t, v)
        assert store.aggregate("cpu", how="mean")["m1"] == pytest.approx(3.0)
        assert store.aggregate("cpu", how="max")["m1"] == 5.0
        assert store.aggregate("cpu", how="min")["m1"] == 1.0
        assert store.aggregate("cpu", how="latest")["m1"] == 5.0

    def test_aggregate_unknown_mode_raises(self):
        store = MetricStore()
        store.record("cpu", "m1", 1.0, 1.0)
        with pytest.raises(ValueError):
            store.aggregate("cpu", how="median")

    def test_top_machines(self):
        store = MetricStore()
        store.record("cpu", "m1", 1.0, 10.0)
        store.record("cpu", "m2", 1.0, 90.0)
        store.record("cpu", "m3", 1.0, 50.0)
        top = store.top_machines("cpu", top=2)
        assert top[0][0] == "m2"
        assert len(top) == 2

    def test_threshold_breaches(self):
        store = MetricStore()
        store.record("disk", "m1", 1.0, 99.0)
        store.record("disk", "m2", 1.0, 10.0)
        breaches = store.threshold_breaches("disk", threshold=95.0)
        assert list(breaches) == ["m1"]

    def test_merge_stores(self):
        a, b = MetricStore(), MetricStore()
        a.record("cpu", "m1", 1.0, 1.0)
        b.record("cpu", "m2", 1.0, 2.0)
        merged = merge_stores([a, b])
        assert len(merged) == 2

    def test_summarize_series(self):
        series = MetricSeries("cpu", "m1", unit="%")
        series.add(1.0, 50.0)
        text = summarize_series(series)
        assert "cpu@m1" in text and "%" in text


class TestConcurrentWriters:
    """Regression: the hub's metric paths are written from several threads.

    Before the store/series locks, concurrent ``record`` calls lost
    samples two ways: two threads creating the same series raced the
    get-then-set on the series dict (one thread's sample landed in a
    series that was immediately overwritten), and two threads appending
    to one series raced the list mutations.  The hammer drives both
    shapes — many threads on one series, and many threads fanning over a
    shared set of series — with concurrent readers scanning windows, and
    asserts not a single sample was lost or torn.
    """

    def test_multi_writer_hammer_loses_no_samples(self):
        import threading

        store = MetricStore()
        writers = 8
        samples = 300
        start_gate = threading.Event()
        errors = []

        def write(worker: int) -> None:
            try:
                start_gate.wait(timeout=10.0)
                for step in range(samples):
                    # Same-series contention: everyone hits ("hot", "m0").
                    store.record("hot", "m0", float(step), float(worker))
                    # First-sample contention: each (metric, machine) pair
                    # is created under the race, not ahead of it.
                    store.record(f"cold-{step % 7}", f"m{worker % 3}",
                                 float(step), 1.0)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def read() -> None:
            try:
                start_gate.wait(timeout=10.0)
                for _ in range(samples):
                    series = store.series("hot", "m0")
                    if series is not None:
                        # A torn insert would surface here as an index error
                        # or a points() scan over a half-shifted list.
                        series.points(start=10.0, end=200.0)
                        series.latest()
                    store.aggregate("cold-3", how="max")
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(worker,)) for worker in range(writers)
        ] + [threading.Thread(target=read) for _ in range(3)]
        for thread in threads:
            thread.start()
        start_gate.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        hot = store.series("hot", "m0")
        assert hot is not None and len(hot) == writers * samples
        cold_total = sum(
            len(store.series(f"cold-{bucket}", f"m{machine}") or [])
            for bucket in range(7)
            for machine in range(3)
        )
        assert cold_total == writers * samples

    def test_out_of_order_inserts_race_ordered_reads(self):
        import threading

        series = MetricSeries("jitter", "m0")
        start_gate = threading.Event()
        errors = []

        def write(worker: int) -> None:
            try:
                start_gate.wait(timeout=10.0)
                # Descending timestamps force the bisect-insert path on
                # every add — the racy list surgery the lock now guards.
                for step in range(200, 0, -1):
                    series.add(float(step * 3 + worker), float(worker))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def read() -> None:
            try:
                start_gate.wait(timeout=10.0)
                for _ in range(400):
                    points = series.points()
                    timestamps = [p.timestamp for p in points]
                    assert timestamps == sorted(timestamps)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(w,)) for w in range(3)]
        threads.append(threading.Thread(target=read))
        for thread in threads:
            thread.start()
        start_gate.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(series) == 3 * 200
        final = [p.timestamp for p in series.points()]
        assert final == sorted(final)
