"""Tests for the trace store."""

from __future__ import annotations

from repro.telemetry import Span, Trace, TraceStore, render_trace


def make_trace(trace_id="t1", error_leaf=False):
    spans = [
        Span(trace_id, f"{trace_id}-root", None, "submission", "receive", 0.0, 0.1),
        Span(trace_id, f"{trace_id}-route", f"{trace_id}-root", "routing", "categorize", 0.1, 0.2),
        Span(
            trace_id,
            f"{trace_id}-deliver",
            f"{trace_id}-route",
            "delivery",
            "deliver",
            0.3,
            0.5,
            status="error" if error_leaf else "ok",
        ),
    ]
    return spans


class TestTrace:
    def test_root_and_children(self):
        trace = Trace("t1", make_trace())
        assert trace.root.span_id == "t1-root"
        assert len(trace.children(trace.root)) == 1

    def test_duration(self):
        trace = Trace("t1", make_trace())
        assert trace.duration == 0.8

    def test_error_detection(self):
        clean = Trace("t1", make_trace())
        broken = Trace("t2", make_trace("t2", error_leaf=True))
        assert not clean.has_error
        assert broken.has_error
        assert len(broken.error_spans()) == 1

    def test_critical_path_is_root_to_leaf(self):
        trace = Trace("t1", make_trace())
        path = trace.critical_path()
        assert [s.span_id for s in path] == ["t1-root", "t1-route", "t1-deliver"]

    def test_error_path_ends_at_error(self):
        trace = Trace("t2", make_trace("t2", error_leaf=True))
        path = trace.error_path()
        assert path[-1].is_error
        assert path[0].parent_id is None

    def test_error_path_empty_when_no_error(self):
        trace = Trace("t1", make_trace())
        assert trace.error_path() == []

    def test_services(self):
        trace = Trace("t1", make_trace())
        assert trace.services() == ["delivery", "routing", "submission"]

    def test_empty_trace(self):
        trace = Trace("tx", [])
        assert trace.root is None
        assert trace.duration == 0.0
        assert trace.critical_path() == []


class TestTraceStore:
    def test_add_and_reconstruct(self):
        store = TraceStore()
        store.extend(make_trace())
        assert len(store) == 3
        assert store.trace("t1") is not None
        assert store.trace("missing") is None

    def test_traces_window(self):
        store = TraceStore()
        store.extend(make_trace("t1"))
        late = [
            Span("t2", "t2-root", None, "submission", "receive", 100.0, 0.1),
        ]
        store.extend(late)
        assert len(store.traces(start=50.0)) == 1
        assert len(store.traces()) == 2

    def test_error_traces(self):
        store = TraceStore()
        store.extend(make_trace("t1"))
        store.extend(make_trace("t2", error_leaf=True))
        assert [t.trace_id for t in store.error_traces()] == ["t2"]

    def test_service_latency(self):
        store = TraceStore()
        store.extend(make_trace("t1"))
        mean, p95 = store.service_latency("delivery")
        assert mean == 0.5
        assert p95 == 0.5

    def test_service_latency_missing(self):
        store = TraceStore()
        assert store.service_latency("nope") == (0.0, 0.0)

    def test_error_rate_by_service(self):
        store = TraceStore()
        store.extend(make_trace("t1"))
        store.extend(make_trace("t2", error_leaf=True))
        rates = store.error_rate_by_service()
        assert rates["delivery"] == 0.5
        assert rates["routing"] == 0.0

    def test_slowest_traces(self):
        store = TraceStore()
        store.extend(make_trace("t1"))
        store.add(Span("t2", "t2-root", None, "x", "y", 0.0, 10.0))
        slowest = store.slowest_traces(top=1)
        assert slowest[0].trace_id == "t2"

    def test_render_trace_marks_errors(self):
        trace = Trace("t2", make_trace("t2", error_leaf=True))
        rendered = render_trace(trace)
        assert "!" in rendered
        assert "t2" in rendered
