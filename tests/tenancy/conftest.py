"""Path setup: the tenancy suite reuses the streaming test utilities."""

from __future__ import annotations

import os
import sys

# pytest puts each test file's own directory on sys.path; the shared
# streaming builders live next to the core suite, one directory over.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "core"))
