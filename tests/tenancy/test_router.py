"""Multi-tenant router suite: fair share, isolation, and single-tenant parity.

The load-bearing property is **parity-by-determinism**: N tenants
interleaved through one :class:`~repro.tenancy.TenantRouter` must produce
bit-identical reports, failures, feedback effects, and index state to N
isolated single-tenant :class:`~repro.core.streaming.StreamIngestor` runs
over the same alert streams — DRR batch composition, shared caches, and the
combined cross-tenant LLM batch change *cost*, never results.  All streams
run on a FakeClock over the idle/flaky handlers, so the suite takes zero
real sleeps.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import streamtest_utils as stu

from repro.bus import AlertEvent, BusReplayer, Recording, TrafficRecorder, build_recording
from repro.bus.jsonl import event_from_record
from repro.core import (
    CollectionConfig,
    IndexConfig,
    IngestConfig,
    PipelineConfig,
)
from repro.core.collect_pool import CollectionPool
from repro.core.errors import IngestQueueFull
from repro.datagen import generate_corpus
from repro.handlers import HandlerRegistry
from repro.llm import SimulatedLLM
from repro.telemetry import TelemetryHub
from repro.tenancy import (
    DEFAULT_TENANT,
    CollectService,
    IngestService,
    RetrievalService,
    TenantQueue,
    TenantQueueFull,
    TenantQuota,
    TenantRouter,
)
from repro.vectordb import NamespacedIndexMap

TENANTS = ("alpha", "beta", "gamma")

#: One random stream element: (tenant pick, alert type, flaky marker?).
#: Idle/flaky only — both are sleep-free, so parity runs entirely virtual.
TENANT_STREAM_ELEMENT = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.sampled_from([stu.IDLE_TYPE, stu.FLAKY_TYPE]),
    st.booleans(),
)


def tenant_history():
    """The same labelled corpus ``build_stream_copilot`` indexes."""
    return generate_corpus(
        total_incidents=40, total_categories=12, seed=11, duration_days=60.0
    )


def build_router(
    n_tenants=2,
    clock=None,
    quotas=None,
    ingest=None,
    with_history=True,
    model=None,
    default_quota=None,
):
    """A router configured exactly like ``stu.build_stream_copilot``."""
    hub = TelemetryHub()
    stu.seed_hub(hub)
    config = PipelineConfig(
        collection=CollectionConfig(strict=True),
        index=IndexConfig(backend="flat", window_days=20.0),
    )
    router = TenantRouter(
        hub,
        registry=stu.stream_test_registry(),
        model=model if model is not None else SimulatedLLM(),
        config=config,
        ingest=ingest if ingest is not None else stu.ingest_config(None),
        clock=clock,
        default_quota=default_quota,
    )
    for name in TENANTS[:n_tenants]:
        router.register(
            name,
            quota=(quotas or {}).get(name),
            history=tenant_history() if with_history else None,
        )
    return router


def assigned_stream(spec, n_tenants):
    """Materialize a spec into (tenant, alert) pairs; fresh alert objects."""
    return [
        (TENANTS[pick % n_tenants], stu.make_stream_alert(i, alert_type=t, flaky=f))
        for i, (pick, t, f) in enumerate(spec)
    ]


# ----------------------------------------------------------------- quotas
class TestTenantQuota:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_inflight": 0},  # would park a lane forever: must be rejected
            {"weight": 0},
        ],
    )
    def test_rejects_non_positive_limits(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


# ------------------------------------------------------------- DRR queue
def make_queue(quotas, capacity=0):
    tq = TenantQueue(clock=stu.FakeClock(), capacity=capacity)
    for tenant, quota in quotas.items():
        tq.register(tenant, quota)
    return tq


def put_all(tq, tenant, labels):
    for label in labels:
        tq.put_item(tenant, (label, Future()))


def pop_labels(tq):
    labels = []
    while True:
        try:
            labels.append(tq.get_nowait()[0])
        except queue.Empty:
            return labels


class TestTenantQueue:
    def test_put_requires_registration(self):
        tq = make_queue({"alpha": TenantQuota()})
        with pytest.raises(KeyError):
            tq.put_item("ghost", ("x", Future()))

    def test_equal_weights_alternate(self):
        tq = make_queue({"alpha": TenantQuota(), "beta": TenantQuota()})
        put_all(tq, "alpha", ["a1", "a2", "a3", "a4"])
        put_all(tq, "beta", ["b1", "b2"])
        assert pop_labels(tq) == ["a1", "b1", "a2", "b2", "a3", "a4"]
        assert tq.empty()

    def test_weights_set_the_batch_share(self):
        tq = make_queue({"alpha": TenantQuota(weight=2), "beta": TenantQuota()})
        put_all(tq, "alpha", ["a1", "a2", "a3", "a4"])
        put_all(tq, "beta", ["b1", "b2"])
        assert pop_labels(tq) == ["a1", "a2", "b1", "a3", "a4", "b2"]

    def test_inflight_cap_defers_without_shedding(self):
        tq = make_queue(
            {"alpha": TenantQuota(max_inflight=1), "beta": TenantQuota()}
        )
        put_all(tq, "alpha", ["a1", "a2"])
        put_all(tq, "beta", ["b1"])
        # a1 takes alpha's only inflight slot; a2 is deferred, not shed.
        assert pop_labels(tq) == ["a1", "b1"]
        assert tq.qsize() == 1  # a2 still queued
        assert tq.inflight("alpha") == 1
        tq.task_done("alpha")
        assert pop_labels(tq) == ["a2"]
        tq.task_done("beta")
        tq.task_done("alpha")
        assert tq.inflight("alpha") == 0

    def test_tenant_depth_quota_sheds_with_tenant(self):
        tq = make_queue(
            {"alpha": TenantQuota(max_queue_depth=2), "beta": TenantQuota()}
        )
        put_all(tq, "alpha", ["a1", "a2"])
        with pytest.raises(TenantQueueFull) as err:
            tq.put_item("alpha", ("a3", Future()))
        assert err.value.tenant == "alpha"
        assert isinstance(err.value, IngestQueueFull)
        # The other tenant's lane is untouched by alpha's quota.
        put_all(tq, "beta", ["b1"])
        assert tq.depth("alpha") == 2
        assert tq.depth("beta") == 1

    def test_global_capacity_sheds(self):
        tq = make_queue(
            {"alpha": TenantQuota(), "beta": TenantQuota()}, capacity=2
        )
        put_all(tq, "alpha", ["a1", "a2"])
        with pytest.raises(TenantQueueFull) as err:
            tq.put_item("beta", ("b1", Future()))
        assert err.value.tenant == "beta"

    def test_blocking_get_times_out_empty(self):
        tq = make_queue({"alpha": TenantQuota()})
        with pytest.raises(queue.Empty):
            tq.get(timeout=0.01)


# ----------------------------------------------------------- namespaces
class _FakeIndex:
    def __init__(self, size):
        self._size = size

    def __len__(self):
        return self._size


class TestNamespacedIndexMap:
    def test_attach_get_and_stats(self):
        spaces = NamespacedIndexMap()
        spaces.attach("alpha", _FakeIndex(3))
        spaces.attach("beta", _FakeIndex(5))
        assert "alpha" in spaces
        assert len(spaces) == 2
        assert spaces.namespaces() == ["alpha", "beta"]
        stats = spaces.stats_dict()
        assert stats["namespaces"] == 2.0
        assert stats["entries_total"] == 8.0
        assert stats["namespace.alpha.entries"] == 3.0

    def test_get_or_create_needs_a_factory(self):
        with pytest.raises(KeyError):
            NamespacedIndexMap().get_or_create("alpha")
        spaces = NamespacedIndexMap(factory=lambda namespace: _FakeIndex(0))
        created = spaces.get_or_create("alpha")
        assert spaces.get("alpha") is created


# -------------------------------------------------------------- services
class TestServiceProtocols:
    def test_decomposed_services_satisfy_their_protocols(self):
        router = build_router(1, with_history=False)
        try:
            assert isinstance(router, IngestService)
            assert isinstance(router._collect_pool, CollectionPool)
            assert isinstance(router._collect_pool, CollectService)
            index = router.tenant_copilot("alpha").prediction.index
            assert index is None  # unindexed tenant
            router.index_history("alpha", tenant_history())
            index = router.tenant_copilot("alpha").prediction.index
            assert isinstance(index, RetrievalService)
            assert router.retrieval.get("alpha") is index
        finally:
            router.stop()


# ------------------------------------------------------------ fair share
class TestFairShareScheduling:
    def flush_order(self, router):
        return [r.incident.alert_message for r in router.flush()]

    def test_drr_composes_shared_batches(self):
        """A bursty tenant's backlog cannot push a steady tenant out of the
        head of the shared micro-batches: equal weights interleave 1:1."""
        router = build_router(2, with_history=False)
        try:
            for i in range(6):
                router.submit(
                    stu.make_stream_alert(i, alert_type=stu.IDLE_TYPE),
                    tenant="alpha",
                )
            for i in (10, 11):
                router.submit(
                    stu.make_stream_alert(i, alert_type=stu.IDLE_TYPE),
                    tenant="beta",
                )
            expected = [0, 10, 1, 11, 2, 3, 4, 5]
            assert self.flush_order(router) == [
                f"synthetic stream alert {i}" for i in expected
            ]
        finally:
            router.stop()

    def test_weights_skew_the_share(self):
        router = build_router(
            2, with_history=False, quotas={"alpha": TenantQuota(weight=2)}
        )
        try:
            for i in range(6):
                router.submit(
                    stu.make_stream_alert(i, alert_type=stu.IDLE_TYPE),
                    tenant="alpha",
                )
            for i in (10, 11):
                router.submit(
                    stu.make_stream_alert(i, alert_type=stu.IDLE_TYPE),
                    tenant="beta",
                )
            expected = [0, 1, 10, 2, 3, 11, 4, 5]
            assert self.flush_order(router) == [
                f"synthetic stream alert {i}" for i in expected
            ]
        finally:
            router.stop()

    def test_max_inflight_defers_across_waves(self):
        """An inflight-capped tenant's backlog waits for its waves to
        retire; nothing is shed and nothing deadlocks the drain."""
        router = build_router(
            2,
            with_history=False,
            ingest=stu.ingest_config(None, max_batch=4),
            quotas={"alpha": TenantQuota(max_inflight=2)},
        )
        try:
            alpha = [
                router.submit(
                    stu.make_stream_alert(i, alert_type=stu.IDLE_TYPE),
                    tenant="alpha",
                )
                for i in range(6)
            ]
            beta = [
                router.submit(
                    stu.make_stream_alert(10 + i, alert_type=stu.IDLE_TYPE),
                    tenant="beta",
                )
                for i in range(2)
            ]
            # Wave 1 = [a0, b0, a1, b1] (alpha capped at 2 inflight); its
            # retirement frees the cap, so the flush drains [a2, a3] next —
            # then stops at the cap-induced Empty.  Nothing is shed: the
            # deferred [a4, a5] are simply still queued for the next drive.
            order = self.flush_order(router)
            assert order == [
                f"synthetic stream alert {i}" for i in (0, 10, 1, 11, 2, 3)
            ]
            assert router.queue_depth == 2
            order += self.flush_order(router)
            assert order == [
                f"synthetic stream alert {i}" for i in (0, 10, 1, 11, 2, 3, 4, 5)
            ]
            assert all(f.done() for f in alpha + beta)
            stats = router.tenant_stats("alpha")
            assert stats.processed == stats.submitted == 6
            assert stats.batches == 3
            assert router.tenant_stats("beta").batches == 1
            assert router._tqueue.inflight("alpha") == 0
        finally:
            router.stop()


# -------------------------------------------------------------- isolation
class TestTenantIsolation:
    def test_queue_quota_sheds_only_the_offender(self):
        router = build_router(
            2, with_history=False, quotas={"alpha": TenantQuota(max_queue_depth=2)}
        )
        try:
            kept = [
                router.submit(
                    stu.make_stream_alert(i, alert_type=stu.IDLE_TYPE),
                    tenant="alpha",
                )
                for i in range(2)
            ]
            with pytest.raises(TenantQueueFull) as err:
                router.submit(
                    stu.make_stream_alert(2, alert_type=stu.IDLE_TYPE),
                    tenant="alpha",
                )
            assert err.value.tenant == "alpha"
            # The victim quota never touches the other tenant.
            beta = router.submit(
                stu.make_stream_alert(3, alert_type=stu.IDLE_TYPE), tenant="beta"
            )
            router.flush()
            assert all(f.result(timeout=30.0) for f in kept + [beta])
            assert router.tenant_stats("alpha").submitted == 2
            per_tenant = router.tenant_stats_dict()
            assert per_tenant["alpha"]["shed"] == 1.0
            assert per_tenant["beta"]["shed"] == 0.0
            flat = router.stats_dict()
            assert flat["shed_total"] == 1.0
            assert flat["tenant.alpha.shed"] == 1.0
            assert flat["tenants"] == 2.0
        finally:
            router.stop()

    def test_burst_shed_carries_the_enqueued_prefix(self):
        router = build_router(
            1, with_history=False, quotas={"alpha": TenantQuota(max_queue_depth=2)}
        )
        try:
            alerts = [
                stu.make_stream_alert(i, alert_type=stu.IDLE_TYPE) for i in range(4)
            ]
            with pytest.raises(TenantQueueFull) as err:
                router.submit_many(alerts, tenant="alpha")
            assert len(err.value.enqueued) == 2
            router.flush()
            for future in err.value.enqueued:
                assert future.result(timeout=30.0) is not None
        finally:
            router.stop()

    def test_faults_fail_only_their_own_tenant(self):
        router = build_router(2)
        try:
            bad = router.submit_many(
                [
                    stu.make_stream_alert(i, alert_type=stu.FLAKY_TYPE, flaky=True)
                    for i in range(3)
                ],
                tenant="alpha",
            )
            good = router.submit_many(
                [
                    stu.make_stream_alert(10 + i, alert_type=stu.IDLE_TYPE)
                    for i in range(3)
                ],
                tenant="beta",
            )
            router.flush()
            for future in bad:
                with pytest.raises(Exception, match="simulated telemetry outage"):
                    future.result(timeout=30.0)
            for future in good:
                assert future.result(timeout=30.0).incident.owning_tenant == "beta"
            assert router.tenant_stats("alpha").collect_failures == 3
            assert router.tenant_stats("beta").collect_failures == 0
        finally:
            router.stop()

    def test_tenants_get_private_incident_id_spaces(self):
        router = build_router(2, with_history=False)
        try:
            fa = router.submit(
                stu.make_stream_alert(0, alert_type=stu.IDLE_TYPE), tenant="alpha"
            )
            fb = router.submit(
                stu.make_stream_alert(1, alert_type=stu.IDLE_TYPE), tenant="beta"
            )
            router.flush()
            # Each tenant sees the ids it would see running alone.
            assert fa.result(timeout=30.0).incident.incident_id == "INC-LIVE-000001"
            assert fb.result(timeout=30.0).incident.incident_id == "INC-LIVE-000001"
        finally:
            router.stop()


# ----------------------------------------------------------------- parity
def run_router_variant(spec, n_tenants, depth=1, workers=None, backend="thread"):
    """Two-pass (feedback in between) multi-tenant run; per-tenant telemetry."""
    tenants = TENANTS[:n_tenants]
    router = build_router(
        n_tenants,
        clock=stu.FakeClock(),
        ingest=stu.ingest_config(workers, backend, pipeline_depth=depth),
    )
    try:

        def ingest_pass():
            futures = {tenant: [] for tenant in tenants}
            for tenant, alert in assigned_stream(spec, n_tenants):
                futures[tenant].append(router.submit(alert, tenant=tenant))
            router.flush()
            return futures

        futures1 = ingest_pass()
        pass1 = {tenant: stu.drain_futures(futures1[tenant]) for tenant in tenants}
        fed = {tenant: [] for tenant in tenants}
        for tenant in tenants:
            reports1, _ = pass1[tenant]
            for position in sorted(reports1):
                incident = futures1[tenant][position].result().incident
                # No tenant argument: the stamped owning_tenant routes it.
                router.record_feedback(incident, f"ConfirmedCategory{position % 3}")
                fed[tenant].append(incident.incident_id)
        futures2 = ingest_pass()
        pass2 = {tenant: stu.drain_futures(futures2[tenant]) for tenant in tenants}
        return {
            tenant: {
                "reports1": pass1[tenant][0],
                "failures1": pass1[tenant][1],
                "reports2": pass2[tenant][0],
                "failures2": pass2[tenant][1],
                "index_state": stu.index_state(
                    router.tenant_copilot(tenant), fed[tenant]
                ),
            }
            for tenant in tenants
        }
    finally:
        router.stop()


def run_isolated(spec, n_tenants, tenant):
    """The tenant's slice of the stream through its own single-tenant pipeline."""
    copilot = stu.build_stream_copilot(strict=True)
    ingestor = copilot.stream(stu.ingest_config(None), clock=stu.FakeClock())
    try:

        def ingest_pass():
            return [
                ingestor.submit(alert)
                for owner, alert in assigned_stream(spec, n_tenants)
                if owner == tenant
            ]

        futures1 = ingest_pass()
        ingestor.flush()
        reports1, failures1 = stu.drain_futures(futures1)
        fed = []
        for position in sorted(reports1):
            incident = futures1[position].result().incident
            ingestor.record_feedback(incident, f"ConfirmedCategory{position % 3}")
            fed.append(incident.incident_id)
        futures2 = ingest_pass()
        ingestor.flush()
        reports2, failures2 = stu.drain_futures(futures2)
        return {
            "reports1": reports1,
            "failures1": failures1,
            "reports2": reports2,
            "failures2": failures2,
            "index_state": stu.index_state(copilot, fed),
        }
    finally:
        ingestor.stop()


class TestTenantParity:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        spec=st.lists(TENANT_STREAM_ELEMENT, min_size=1, max_size=10),
        n_tenants=st.integers(min_value=1, max_value=3),
        depth=st.sampled_from([1, 2]),
    )
    def test_router_matches_isolated_pipelines(self, spec, n_tenants, depth):
        """Reports, failures, feedback effects, and index state per tenant are
        bit-identical to N isolated single-tenant runs of the same streams."""
        routed = run_router_variant(spec, n_tenants, depth=depth)
        for tenant in TENANTS[:n_tenants]:
            assert routed[tenant] == run_isolated(spec, n_tenants, tenant)

    def test_parity_holds_on_pooled_and_process_collection(self):
        spec = [
            (0, stu.IDLE_TYPE, False),
            (1, stu.FLAKY_TYPE, True),
            (0, stu.FLAKY_TYPE, False),
            (1, stu.IDLE_TYPE, False),
        ] * 2
        expected = {
            tenant: run_isolated(spec, 2, tenant) for tenant in TENANTS[:2]
        }
        for workers, backend in ((2, "thread"), (2, "process")):
            routed = run_router_variant(spec, 2, workers=workers, backend=backend)
            assert routed == expected

    def test_noisy_neighbor_changes_nothing_for_the_steady_tenant(self):
        """Beta's results with a shedding, fault-heavy alpha alongside equal
        beta's results with no alpha traffic at all."""
        spec_with_noise = [
            (0, stu.FLAKY_TYPE, True),
            (1, stu.IDLE_TYPE, False),
            (0, stu.FLAKY_TYPE, True),
            (1, stu.FLAKY_TYPE, False),
            (0, stu.IDLE_TYPE, False),
            (1, stu.IDLE_TYPE, False),
        ]
        routed = run_router_variant(spec_with_noise, 2)
        assert routed["beta"] == run_isolated(spec_with_noise, 2, "beta")


# ------------------------------------------------------ shared economies
class TestSharedEconomies:
    def test_identical_cross_tenant_content_costs_one_completion(self):
        """An incident storm hitting two tenants with identical content runs
        one deduplicated LLM batch — same completions as a solo tenant."""
        shared_model = SimulatedLLM()
        router = build_router(2, model=shared_model)
        try:
            before = shared_model.usage.calls
            fa = router.submit(
                stu.make_stream_alert(7, alert_type=stu.IDLE_TYPE), tenant="alpha"
            )
            fb = router.submit(
                stu.make_stream_alert(7, alert_type=stu.IDLE_TYPE), tenant="beta"
            )
            router.flush()
            shared_calls = shared_model.usage.calls - before
            assert stu.report_fingerprint(
                fa.result(timeout=30.0)
            ) == stu.report_fingerprint(fb.result(timeout=30.0))
        finally:
            router.stop()
        solo_model = SimulatedLLM()
        solo = build_router(1, model=solo_model)
        try:
            before = solo_model.usage.calls
            solo.submit(
                stu.make_stream_alert(7, alert_type=stu.IDLE_TYPE), tenant="alpha"
            )
            solo.flush()
            solo_calls = solo_model.usage.calls - before
        finally:
            solo.stop()
        assert shared_calls == solo_calls


# -------------------------------------------------------------- telemetry
class TestTenantTelemetry:
    def test_wave_exports_per_tenant_gauges(self):
        router = build_router(2, with_history=False)
        try:
            router.submit(
                stu.make_stream_alert(0, alert_type=stu.IDLE_TYPE), tenant="alpha"
            )
            router.submit(
                stu.make_stream_alert(1, alert_type=stu.IDLE_TYPE), tenant="beta"
            )
            router.flush()
            metrics = router.hub.metrics
            for tenant in ("alpha", "beta"):
                assert (
                    metrics.latest(
                        f"rcacopilot.tenant.{tenant}.processed", "stream-ingestor"
                    )
                    == 1.0
                )
                assert (
                    metrics.latest(
                        f"rcacopilot.tenant.{tenant}.inflight", "stream-ingestor"
                    )
                    is not None
                )
            assert (
                metrics.latest("rcacopilot.tenancy.tenants", "stream-ingestor")
                == 2.0
            )
            assert (
                metrics.latest("rcacopilot.tenancy.shed_total", "stream-ingestor")
                == 0.0
            )
        finally:
            router.stop()

    def test_stats_dict_rolls_up_every_service(self):
        router = build_router(2)
        try:
            router.submit(
                stu.make_stream_alert(0, alert_type=stu.IDLE_TYPE), tenant="alpha"
            )
            router.flush()
            flat = router.stats_dict()
            assert flat["tenants"] == 2.0
            assert flat["tenant.alpha.processed"] == 1.0
            assert flat["tenant.beta.processed"] == 0.0
            assert any(key.startswith("collect.") for key in flat)
            assert flat["retrieval.namespaces"] == 2.0
            assert flat["retrieval.entries_total"] == 80.0
        finally:
            router.stop()


# -------------------------------------------------------------------- bus
class TestTenantBus:
    def test_tenant_field_round_trips_and_stays_optional(self):
        plain = AlertEvent(1.0, stu.make_stream_alert(0))
        assert "tenant" not in plain.to_record()
        tagged = AlertEvent(2.0, stu.make_stream_alert(1), tenant="alpha")
        record = tagged.to_record()
        assert record["tenant"] == "alpha"
        assert event_from_record(record) == tagged
        # Pre-tenancy recordings decode (empty tenant) and re-encode
        # byte-identically.
        assert event_from_record(plain.to_record()) == plain
        recording = build_recording([plain, tagged])
        assert Recording.loads(recording.dumps()).dumps() == recording.dumps()

    def test_recorded_tenants_replay_to_their_lanes(self):
        spec = [(0, stu.IDLE_TYPE, False), (1, stu.IDLE_TYPE, False)] * 3
        live = build_router(2, clock=stu.FakeClock())
        recorder = TrafficRecorder(live)
        try:
            futures = [
                recorder.submit(alert, tenant=tenant)
                for tenant, alert in assigned_stream(spec, 2)
            ]
            live.flush()
            live_prints = [
                stu.report_fingerprint(f.result(timeout=30.0)) for f in futures
            ]
            recording = recorder.recording()
        finally:
            live.stop()
        assert all(event.tenant for event in recording.alerts)

        fresh = build_router(2, clock=stu.FakeClock())
        try:
            result = BusReplayer(recording, speed=60.0).replay(fresh)
            assert not result.failures
            assert [
                stu.report_fingerprint(report) for report in result.reports
            ] == live_prints
            for tenant in TENANTS[:2]:
                assert fresh.tenant_stats(tenant).processed == 3
        finally:
            fresh.stop()
