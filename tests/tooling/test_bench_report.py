"""Tests for the benchmark trend-report tool (``benchmarks/bench_report.py``)."""

from __future__ import annotations

import json
import os
import sys

BENCHMARKS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
if BENCHMARKS_DIR not in sys.path:
    sys.path.insert(0, BENCHMARKS_DIR)

import bench_report  # noqa: E402


THROUGHPUT = {
    "benchmark": "throughput_batch",
    "config": {"quick_mode": False},
    "results": {"1000": {"speedup": 4.0}, "10000": {"speedup": 6.5}},
    "collect_bound": {"speedup": 3.1},
    "bursty_autoscale": {
        "autoscaled": {
            "wall_ratio_vs_best_static": 0.95,
            "worker_seconds_ratio_vs_best_static": 0.8,
        }
    },
}

RETRIEVAL = {
    "benchmark": "retrieval_sharded",
    "config": {"quick_mode": True},
    "speedups": {
        "sharded_over_flat_live": 3.7,
        "parallel_over_sequential_live": 1.6,
    },
    "stats": {"scanned_shard_ratio": 0.05},
    "process": {
        "speedup_replay": 2.1,
        "worker_rss_ratio": 0.03,
        "arena_bytes": 110_000_000,
    },
    "quantized_prefilter": {"speedup_live": 1.2},
}


def write_run(directory, throughput=None, retrieval=None):
    os.makedirs(directory, exist_ok=True)
    if throughput is not None:
        with open(os.path.join(directory, "BENCH_throughput.json"), "w") as handle:
            json.dump(throughput, handle)
    if retrieval is not None:
        with open(os.path.join(directory, "BENCH_retrieval.json"), "w") as handle:
            json.dump(retrieval, handle)


def test_report_renders_trend_across_runs(tmp_path):
    write_run(tmp_path / "run-a", throughput=THROUGHPUT, retrieval=RETRIEVAL)
    write_run(tmp_path / "run-b", throughput=THROUGHPUT)
    runs = [bench_report.load_run(str(tmp_path / name)) for name in ("run-a", "run-b")]
    report = bench_report.render_report(runs)
    assert "| section | metric | run-a | run-b |" in report
    # Best history-size speedup picks the max across sizes.
    assert "| throughput | batch vs sequential speedup (best history size) | 6.50 | 6.50 |" in report
    assert "| throughput | autoscaled wall vs best static (bursty) | 0.95 | 0.95 |" in report
    # run-b has no retrieval artifact: its retrieval cells show "—".
    assert "| retrieval | sharded vs flat speedup (live) | 3.70 | — |" in report
    assert "| retrieval | process vs sequential sharded (replay) | 2.10 | — |" in report
    assert "| retrieval | process worker RSS / index bytes | 0.03 | — |" in report
    assert "| retrieval | int8 prefilter speedup (live) | 1.20 | — |" in report
    assert "run-a: quick" in report and "run-b: full" in report


def test_report_survives_garbage_payloads(tmp_path):
    run = tmp_path / "broken"
    os.makedirs(run)
    (run / "BENCH_throughput.json").write_text("{not json")
    (run / "BENCH_retrieval.json").write_text(json.dumps({"speedups": "nope"}))
    report = bench_report.render_report([bench_report.load_run(str(run))])
    # Every metric degrades to a "—" cell; the report itself renders.
    assert "| throughput | collect-bound pool speedup (4 workers) | — |" in report


def test_pre_tenancy_archives_render_missing_tenant_cells(tmp_path):
    """Regression: archives recorded before the ``tenants`` block existed
    must render "—" for the tenancy rows, not crash or mis-render."""
    write_run(tmp_path / "old", throughput=THROUGHPUT)  # no "tenants" block
    tenanted = dict(
        THROUGHPUT,
        tenants={"steady_p95_ratio": 1.08, "bursty_shed": 12},
    )
    write_run(tmp_path / "new", throughput=tenanted)
    runs = [bench_report.load_run(str(tmp_path / name)) for name in ("old", "new")]
    report = bench_report.render_report(runs)
    assert (
        "| throughput | tenants steady p95 wall vs solo (fair share) | — | 1.08 |"
        in report
    )
    assert "| throughput | tenants bursty alerts shed by quota | — | 12 |" in report


def test_cli_writes_output_file(tmp_path, capsys):
    write_run(tmp_path / "run", throughput=THROUGHPUT)
    output = tmp_path / "BENCH_report.md"
    code = bench_report.main([str(tmp_path / "run"), "-o", str(output)])
    assert code == 0
    assert "Benchmark trend report" in output.read_text()
    assert str(output) in capsys.readouterr().out
