"""Lint: no wall-clock reads or sleeps in the library outside the clock module.

The record/replay bus's determinism guarantee rests on every time read and
every wait going through an injectable :class:`repro.core.clock.Clock` —
one stray ``time.time()`` re-introduces the wall clock into a replay and
silently breaks faster-than-real-time playback.  This suite walks the AST
of every module under ``src/repro/`` and fails on any call to
``time.time`` or ``time.sleep`` (through any import alias) anywhere except
``core/clock.py``, where the real-clock implementations live.

``time.monotonic`` and ``time.perf_counter`` stay allowed: they measure
*durations* for telemetry and never gate behaviour on the wall clock.
"""

from __future__ import annotations

import ast
import os
from typing import List, Set, Tuple

#: The only functions of the ``time`` module the library may not call.
BANNED = {"time", "sleep"}

#: The one module allowed to touch the real clock.
ALLOWED_RELATIVE = {os.path.join("core", "clock.py")}


def repro_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(here)), "src", "repro")


def banned_calls(path: str) -> List[Tuple[int, str]]:
    """(line, rendered call) for every banned wall-clock call in one file."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)

    time_aliases: Set[str] = set()  # `import time` / `import time as t`
    banned_names: Set[str] = set()  # `from time import time, sleep` (+aliases)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in BANNED:
                        banned_names.add(alias.asname or alias.name)

    hits: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in BANNED
            and isinstance(func.value, ast.Name)
            and func.value.id in time_aliases
        ):
            hits.append((node.lineno, f"{func.value.id}.{func.attr}()"))
        elif isinstance(func, ast.Name) and func.id in banned_names:
            hits.append((node.lineno, f"{func.id}()"))
    return hits


def test_no_wallclock_calls_outside_clock_module():
    root = repro_root()
    assert os.path.isdir(root), root
    offences: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, root)
            if relative in ALLOWED_RELATIVE:
                continue
            for line, call in banned_calls(path):
                offences.append(
                    f"src/repro/{relative}:{line}: {call} — inject a "
                    "repro.core.clock.Clock instead"
                )
    assert not offences, "\n".join(offences)


def test_lint_walk_covers_the_tenancy_package():
    """Regression: new packages are linted by virtue of the os.walk — pin
    that the tenancy service layer (added after the lint) is in its scope."""
    root = repro_root()
    walked = {
        os.path.relpath(os.path.join(dirpath, filename), root)
        for dirpath, _dirnames, filenames in os.walk(root)
        for filename in filenames
        if filename.endswith(".py")
    }
    for expected in ("router.py", "services.py", "__init__.py"):
        assert os.path.join("tenancy", expected) in walked


def test_the_detector_itself_catches_every_alias_form():
    """Self-test: the AST walk sees every way of spelling the banned calls."""
    import tempfile

    source = (
        "import time\n"
        "import time as t\n"
        "from time import time as now, sleep\n"
        "from time import monotonic, perf_counter\n"
        "time.time()\n"
        "t.sleep(1)\n"
        "now()\n"
        "sleep(2)\n"
        "monotonic()\n"  # allowed
        "perf_counter()\n"  # allowed
        "time.monotonic()\n"  # allowed
    )
    with tempfile.NamedTemporaryFile("w", suffix=".py", delete=False) as handle:
        handle.write(source)
        path = handle.name
    try:
        hits = banned_calls(path)
    finally:
        os.unlink(path)
    assert [call for _line, call in hits] == [
        "time.time()",
        "t.sleep()",
        "now()",
        "sleep()",
    ]
