"""Tests for the batched search path, the incremental store and persistence.

Covers the guarantees the batch refactor introduced:

* ``search_many`` returns exactly what per-query ``search`` calls return;
* ``history_before_day`` excludes same-day and later incidents (no
  look-ahead when replaying chronological splits);
* with diversity enabled the result is always filled to ``min(k, eligible)``
  from the remaining candidates — filters never silently shrink it;
* the store grows incrementally (``add`` / ``add_many``), supports category
  corrections and ``save``/``load`` round trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vectordb import (
    NearestNeighborSearch,
    SimilarityConfig,
    VectorStore,
    similarity,
)


def build_store(entries=None):
    store = VectorStore()
    rows = entries or [
        ("a1", [1.0, 0.0, 0.0], 10.0, "A", "a one"),
        ("a2", [0.9, 0.1, 0.0], 11.0, "A", "a two"),
        ("b1", [0.0, 1.0, 0.0], 11.5, "B", "b one"),
        ("b2", [0.1, 0.9, 0.0], 9.0, "B", "b two"),
        ("c1", [0.0, 0.0, 1.0], 2.0, "C", "c one"),
    ]
    for incident_id, vector, day, category, text in rows:
        store.add(incident_id, np.array(vector), day, category, text=text)
    return store


class TestVectorStoreIncremental:
    def test_growth_beyond_initial_capacity(self):
        store = VectorStore()
        rng = np.random.default_rng(3)
        vectors = rng.standard_normal((300, 8))
        for i in range(300):
            store.add(f"i{i}", vectors[i], float(i), f"cat{i % 7}")
        assert len(store) == 300
        assert store.matrix().shape == (300, 8)
        np.testing.assert_array_equal(store.matrix(), vectors)
        np.testing.assert_array_equal(store.created_days(), np.arange(300.0))
        # Entry views must track the latest buffer even after growth.
        np.testing.assert_array_equal(store.get("i0").vector, vectors[0])

    def test_add_many_matches_sequential_adds(self):
        rng = np.random.default_rng(5)
        vectors = rng.standard_normal((40, 6))
        one = VectorStore()
        for i in range(40):
            one.add(f"i{i}", vectors[i], float(i), f"cat{i % 3}", text=f"t{i}")
        many = VectorStore()
        many.add_many(
            incident_ids=[f"i{i}" for i in range(40)],
            vectors=vectors,
            created_days=[float(i) for i in range(40)],
            categories=[f"cat{i % 3}" for i in range(40)],
            texts=[f"t{i}" for i in range(40)],
        )
        np.testing.assert_array_equal(one.matrix(), many.matrix())
        np.testing.assert_array_equal(one.created_days(), many.created_days())
        assert [e.incident_id for e in one] == [e.incident_id for e in many]
        assert [e.category for e in one] == [e.category for e in many]

    def test_add_many_validation(self):
        store = VectorStore()
        with pytest.raises(ValueError):
            store.add_many(["a"], np.zeros((2, 3)), [1.0, 2.0], ["x", "y"])
        store.add("a", np.zeros(3), 1.0, "x")
        with pytest.raises(ValueError):
            store.add_many(["a"], np.zeros((1, 3)), [1.0], ["x"])  # duplicate id
        with pytest.raises(ValueError):
            store.add_many(["b"], np.zeros((1, 2)), [1.0], ["x"])  # wrong dim
        with pytest.raises(ValueError):  # duplicate inside the batch itself
            store.add_many(["c", "c"], np.zeros((2, 3)), [1.0, 2.0], ["x", "y"])
        assert len(store) == 1  # failed bulk insert leaves the store untouched

    def test_update_category(self):
        store = build_store()
        store.update_category("a1", "Z")
        assert store.get("a1").category == "Z"
        assert "Z" in store.categories()
        with pytest.raises(KeyError):
            store.update_category("missing", "Z")

    def test_squared_norms_track_additions(self):
        store = build_store()
        first = store.squared_norms().copy()
        np.testing.assert_allclose(
            first, [np.dot(e.vector, e.vector) for e in store.entries()]
        )
        store.add("d1", np.array([2.0, 2.0, 1.0]), 3.0, "D")
        assert store.squared_norms().shape == (6,)
        assert store.squared_norms()[-1] == pytest.approx(9.0)

    def test_save_load_roundtrip(self, tmp_path):
        store = build_store()
        path = str(tmp_path / "index.npz")
        store.save(path)
        loaded = VectorStore.load(path)
        assert len(loaded) == len(store)
        np.testing.assert_array_equal(loaded.matrix(), store.matrix())
        np.testing.assert_array_equal(loaded.created_days(), store.created_days())
        for entry, original in zip(loaded.entries(), store.entries()):
            assert entry.incident_id == original.incident_id
            assert entry.category == original.category
            assert entry.text == original.text
        # The loaded index serves searches identically.
        config = SimilarityConfig(alpha=0.3, k=3)
        a = NearestNeighborSearch(store, config).search(np.array([1.0, 0.0, 0.0]), 12.0)
        b = NearestNeighborSearch(loaded, config).search(np.array([1.0, 0.0, 0.0]), 12.0)
        assert [n.incident_id for n in a] == [n.incident_id for n in b]


class TestSearchMany:
    @pytest.fixture(scope="class")
    def big_search(self):
        rng = np.random.default_rng(11)
        store = VectorStore()
        vectors = rng.standard_normal((250, 12))
        store.add_many(
            incident_ids=[f"i{i}" for i in range(250)],
            vectors=vectors,
            created_days=rng.uniform(0.0, 120.0, size=250),
            categories=[f"cat{i % 17}" for i in range(250)],
            texts=[f"text {i}" for i in range(250)],
        )
        return NearestNeighborSearch(store, SimilarityConfig(alpha=0.3, k=5))

    def _queries(self, dim=12, count=8):
        rng = np.random.default_rng(29)
        return rng.standard_normal((count, dim)), rng.uniform(0.0, 120.0, size=count)

    def test_search_many_matches_per_query_search(self, big_search):
        queries, days = self._queries()
        batch = big_search.search_many(queries, days)
        for row in range(queries.shape[0]):
            single = big_search.search(queries[row], days[row])
            assert [n.incident_id for n in batch[row]] == [
                n.incident_id for n in single
            ]
            assert [n.similarity for n in batch[row]] == pytest.approx(
                [n.similarity for n in single]
            )

    def test_search_many_with_filters_matches_search(self, big_search):
        queries, days = self._queries(count=5)
        excludes = [{f"i{row}", f"i{row + 40}"} for row in range(5)]
        batch = big_search.search_many(
            queries, days, k=4, exclude_ids=excludes, history_before_day=80.0
        )
        for row in range(5):
            single = big_search.search(
                queries[row],
                days[row],
                k=4,
                exclude_ids=excludes[row],
                history_before_day=80.0,
            )
            assert [n.incident_id for n in batch[row]] == [
                n.incident_id for n in single
            ]

    def test_duplicate_queries_share_results(self, big_search):
        queries, days = self._queries(count=2)
        stacked = np.vstack([queries[0], queries[0], queries[1]])
        stacked_days = np.array([days[0], days[0], days[1]])
        results = big_search.search_many(stacked, stacked_days)
        assert [n.incident_id for n in results[0]] == [
            n.incident_id for n in results[1]
        ]
        # Result lists must still be independent objects.
        results[0].pop()
        assert len(results[1]) == 5

    def test_scores_match_similarity_formula(self, big_search):
        queries, days = self._queries(count=3)
        scores = big_search.score_many(queries, days)
        entries = big_search.store.entries()
        for row in range(3):
            for index in (0, 57, 249):
                expected = similarity(
                    queries[row],
                    entries[index].vector,
                    days[row],
                    entries[index].created_day,
                    alpha=0.3,
                )
                assert scores[row, index] == pytest.approx(expected)

    def test_empty_batch_and_empty_store(self, big_search):
        assert big_search.search_many(np.zeros((0, 12)), np.zeros(0)) == []
        empty = NearestNeighborSearch(VectorStore())
        assert empty.search_many(np.ones((2, 4)), np.zeros(2)) == [[], []]


class TestLookAheadAndFillGuarantees:
    def test_history_before_day_excludes_same_day(self):
        search = NearestNeighborSearch(
            build_store(), SimilarityConfig(alpha=0.0, k=5, diverse_categories=False)
        )
        neighbors = search.search(
            np.array([1.0, 0.0, 0.0]), query_day=12.0, history_before_day=11.0
        )
        ids = {n.incident_id for n in neighbors}
        # a2 was created exactly on day 11 -> excluded (strictly before).
        assert ids == {"a1", "b2", "c1"}

    def test_diverse_result_filled_to_min_k_eligible(self):
        # 5 entries, 3 categories; k=5 with diversity on must return all 5.
        search = NearestNeighborSearch(
            build_store(), SimilarityConfig(alpha=0.0, k=5, diverse_categories=True)
        )
        neighbors = search.search(np.array([1.0, 0.0, 0.0]), query_day=12.0)
        assert len(neighbors) == 5

    def test_filters_never_shrink_below_guarantee(self):
        # Exclusions + cutoff leave 3 eligible entries; k=4 -> exactly 3 back.
        search = NearestNeighborSearch(
            build_store(), SimilarityConfig(alpha=0.0, k=4, diverse_categories=True)
        )
        neighbors = search.search(
            np.array([1.0, 0.0, 0.0]),
            query_day=12.0,
            exclude_ids={"a1", "b1"},
            history_before_day=11.2,
        )
        assert [n.incident_id for n in neighbors[:1]] == ["a2"]
        assert len(neighbors) == 3  # a2, b2, c1 — every eligible entry

    def test_fill_prefers_distinct_categories_first(self):
        search = NearestNeighborSearch(
            build_store(), SimilarityConfig(alpha=0.0, k=3, diverse_categories=True)
        )
        neighbors = search.search(np.array([1.0, 0.0, 0.0]), query_day=12.0)
        categories = [n.category for n in neighbors]
        assert len(set(categories)) == 3  # one of each while categories remain

    def test_deep_diversity_scan_beyond_prefix(self):
        # 60 near-identical entries of one category ranked first, one distant
        # entry of a second category: diversity must find it even though it
        # is far outside the initial argpartition prefix.
        store = VectorStore()
        rng = np.random.default_rng(2)
        for i in range(60):
            store.add(f"x{i}", np.array([1.0, 0.0]) + rng.normal(0, 1e-4, 2), 10.0, "X")
        store.add("y0", np.array([-1.0, 0.0]), 10.0, "Y")
        search = NearestNeighborSearch(
            store, SimilarityConfig(alpha=0.0, k=2, diverse_categories=True)
        )
        neighbors = search.search(np.array([1.0, 0.0]), query_day=10.0)
        assert len(neighbors) == 2
        assert {n.category for n in neighbors} == {"X", "Y"}
