"""Shard compaction: layout rebalancing that never changes search results.

Covers the :meth:`ShardedVectorIndex.compact` contract — merge adjacent
cold shards below the size floor, split hot shards above the ceiling —
plus the auto-trigger policy, the persistence round trip of a compacted
layout, and the acceptance scenario: after a simulated two-year skewed
ingest, compaction bounds the max/median shard-size ratio and keeps the
scan economics close to a freshly built layout.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.vectordb import (
    CompactionPolicy,
    FlatVectorIndex,
    ShardedVectorIndex,
    SimilarityConfig,
    load_index,
)

DIM = 16
TWO_YEARS = 730.0
WINDOW = 30.0


def skewed_corpus(total=12_000, seed=2024):
    """A two-year history whose arrival rate grows ~cubically (hot head)."""
    rng = np.random.default_rng(seed)
    days = np.sort(TWO_YEARS * rng.uniform(0.0, 1.0, size=total) ** 0.25)
    vectors = rng.standard_normal((total, DIM))
    vectors *= 6.0 / np.linalg.norm(vectors, axis=1, keepdims=True)
    ids = [f"INC-{i:05d}" for i in range(total)]
    categories = [f"Category{i % 40}" for i in range(total)]
    return ids, vectors, days, categories


def assert_same_results(reference, candidates):
    for ref_neighbors, cand_neighbors in zip(reference, candidates):
        assert [n.incident_id for n in ref_neighbors] == [
            n.incident_id for n in cand_neighbors
        ]
        assert [n.similarity for n in cand_neighbors] == pytest.approx(
            [n.similarity for n in ref_neighbors]
        )


def size_ratio(index) -> float:
    sizes = sorted(index.shard_sizes().values())
    return sizes[-1] / sizes[len(sizes) // 2]


class TestCompactionPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(min_entries=-1)
        with pytest.raises(ValueError):
            CompactionPolicy(max_entries=0)
        with pytest.raises(ValueError):
            CompactionPolicy(min_entries=100, max_entries=150)
        with pytest.raises(ValueError):
            CompactionPolicy(check_every=0)
        policy = CompactionPolicy(min_entries=0, max_entries=10)
        assert not policy.auto

    def test_explicit_compact_overrides_keep_policy_invariant(self):
        """compact(min, max) must reject floor/ceiling pairs the policy would.

        A ceiling below twice the floor lets the split pass produce
        sub-floor pieces the merge pass can never recombine.
        """
        index = ShardedVectorIndex(SimilarityConfig(), window_days=WINDOW)
        ids, vectors, days, categories = skewed_corpus(total=300)
        index.add_many(ids, vectors, days, categories)
        with pytest.raises(ValueError):
            index.compact(min_entries=100, max_entries=150)
        with pytest.raises(ValueError):
            index.compact(min_entries=-1)
        with pytest.raises(ValueError):
            index.compact(max_entries=0)

    def test_compact_report_shape(self):
        index = ShardedVectorIndex(SimilarityConfig(), window_days=WINDOW)
        ids, vectors, days, categories = skewed_corpus(total=600)
        index.add_many(ids, vectors, days, categories)
        report = index.compact(min_entries=50, max_entries=200)
        for key in (
            "shards_before",
            "shards_after",
            "shards_split",
            "shards_merged",
            "max_shard_size",
            "median_shard_size",
        ):
            assert key in report
        assert report["shards_after"] == index.stats()["shard_count"]


class TestSkewedIngestAcceptance:
    def test_two_year_skewed_ingest_stays_balanced(self):
        """Acceptance: max/median <= 4 and scan economics near fresh layout."""
        ids, vectors, days, categories = skewed_corpus()
        similarity = SimilarityConfig(alpha=0.3, k=5, diverse_categories=True)
        policy = CompactionPolicy(
            min_entries=150, max_entries=600, auto=True, check_every=1_000
        )

        # The aged index: chronological micro-batches, auto compaction.
        aged = ShardedVectorIndex(
            similarity, window_days=WINDOW, compaction=policy, max_workers=1
        )
        batch = 500
        for start in range(0, len(ids), batch):
            stop = start + batch
            aged.add_many(
                ids[start:stop], vectors[start:stop], days[start:stop],
                categories[start:stop],
            )
        aged.compact()

        # Skew is real: the same ingest without compaction is badly skewed.
        plain = ShardedVectorIndex(similarity, window_days=WINDOW)
        plain.add_many(ids, vectors, days, categories)
        assert size_ratio(plain) > 4.0
        assert size_ratio(aged) <= 4.0

        # Fresh-layout baseline: one-shot build, one compaction pass.
        fresh = ShardedVectorIndex(
            similarity, window_days=WINDOW, compaction=policy, max_workers=1
        )
        fresh.add_many(ids, vectors, days, categories)
        fresh.compact()

        flat = FlatVectorIndex(similarity)
        flat.add_many(ids, vectors, days, categories)

        rng = np.random.default_rng(7)
        queries = rng.standard_normal((24, DIM))
        queries *= 6.0 / np.linalg.norm(queries, axis=1, keepdims=True)
        query_days = rng.uniform(700.0, TWO_YEARS, size=24)

        reference = flat.search_many(queries, query_days)
        assert_same_results(reference, aged.search_many(queries, query_days))
        assert_same_results(reference, fresh.search_many(queries, query_days))

        aged_stats = aged.stats()
        fresh_stats = fresh.stats()
        assert aged_stats["scanned_shard_ratio"] <= (
            1.2 * fresh_stats["scanned_shard_ratio"]
        ), (
            f"aged layout scans {aged_stats['scanned_shard_ratio']:.1%} of shards, "
            f"fresh baseline {fresh_stats['scanned_shard_ratio']:.1%}"
        )
        assert aged_stats["scanned_entry_ratio"] <= (
            1.2 * fresh_stats["scanned_entry_ratio"]
        )
        assert aged_stats["compactions"] >= 1.0
        assert aged_stats["shards_merged"] + aged_stats["shards_split"] > 0


class TestCompactionBehaviour:
    def test_merge_only_touches_adjacent_cold_shards(self):
        """A hot shard between two cold runs is never absorbed into either."""
        similarity = SimilarityConfig(alpha=0.3, k=3)
        index = ShardedVectorIndex(similarity, window_days=10.0)
        rng = np.random.default_rng(5)
        row = 0
        # Layout: two tiny shards, one big shard, two tiny shards.
        for window, count in ((0, 5), (1, 5), (2, 300), (3, 4), (4, 6)):
            index.add_many(
                [f"w{window}-{i}" for i in range(count)],
                rng.standard_normal((count, 4)),
                rng.uniform(window * 10.0, window * 10.0 + 9.9, size=count),
                [f"c{(row + i) % 5}" for i in range(count)],
            )
            row += count
        report = index.compact(min_entries=20, max_entries=400)
        assert report["shards_merged"] == 4  # the two cold runs, not the hot one
        sizes = index.shard_sizes()
        assert sorted(sizes.values()) == [10, 10, 300]

    def test_split_respects_day_boundaries_and_single_day_shards(self):
        similarity = SimilarityConfig(alpha=0.3, k=3)
        index = ShardedVectorIndex(similarity, window_days=10.0)
        rng = np.random.default_rng(6)
        # 200 entries spread inside one window: splittable.
        index.add_many(
            [f"a{i}" for i in range(200)],
            rng.standard_normal((200, 4)),
            rng.uniform(0.0, 9.9, size=200),
            ["A"] * 200,
        )
        # 200 entries all on the same day: cannot be split (routing would
        # break), so compaction must leave them alone.
        index.add_many(
            [f"b{i}" for i in range(200)],
            rng.standard_normal((200, 4)),
            [15.0] * 200,
            ["B"] * 200,
        )
        report = index.compact(min_entries=0, max_entries=80)
        assert report["shards_split"] == 1
        sizes = index.shard_sizes().values()
        assert max(sizes) == 200  # the single-day shard survived intact
        assert sum(sizes) == 400
        assert sum(1 for size in sizes if size <= 80) >= 3

    def test_inserts_after_compaction_route_into_compacted_ranges(self):
        """New entries land in merged/split shards, and parity holds."""
        similarity = SimilarityConfig(alpha=0.3, k=4)
        flat = FlatVectorIndex(similarity)
        sharded = ShardedVectorIndex(similarity, window_days=10.0)
        rng = np.random.default_rng(11)
        count = 500
        ids = [f"i{i}" for i in range(count)]
        vectors = rng.standard_normal((count, 6))
        days = rng.uniform(0.0, 200.0, size=count)
        categories = [f"c{i % 9}" for i in range(count)]
        flat.add_many(ids, vectors, days, categories)
        sharded.add_many(ids, vectors, days, categories)
        sharded.compact(min_entries=40, max_entries=120)
        shard_count = len(sharded.shard_sizes())
        more = rng.standard_normal((100, 6))
        more_days = rng.uniform(0.0, 200.0, size=100)
        more_ids = [f"j{i}" for i in range(100)]
        more_categories = [f"c{i % 9}" for i in range(100)]
        flat.add_many(more_ids, more, more_days, more_categories)
        sharded.add_many(more_ids, more, more_days, more_categories)
        # Every in-range insert reused a compacted shard; none resurrected
        # its original time bucket.
        assert len(sharded.shard_sizes()) == shard_count
        queries = rng.standard_normal((8, 6))
        query_days = rng.uniform(0.0, 220.0, size=8)
        assert_same_results(
            flat.search_many(queries, query_days),
            sharded.search_many(queries, query_days),
        )

    def test_incremental_budget_defers_and_eventually_drains(self):
        """A rewrite budget caps per-pass work; repeated passes converge.

        With ``max_rewrite_shards`` set, one ``compact`` call rewrites at
        most that many source shards, reports the backlog via
        ``shards_deferred``, and never changes search results mid-way.
        """
        similarity = SimilarityConfig(alpha=0.3, k=4)
        index = ShardedVectorIndex(similarity, window_days=WINDOW)
        ids, vectors, days, categories = skewed_corpus(total=3_000)
        index.add_many(ids, vectors, days, categories)

        reference = ShardedVectorIndex(similarity, window_days=WINDOW)
        reference.add_many(ids, vectors, days, categories)
        reference.compact(min_entries=60, max_entries=240)

        rng = np.random.default_rng(17)
        queries = rng.standard_normal((6, DIM))
        query_days = rng.uniform(0.0, 760.0, size=6)
        expected = reference.search_many(queries, query_days)

        report = index.compact(
            min_entries=60, max_entries=240, max_rewrite_shards=2
        )
        assert report["shards_deferred"] > 0
        # Mid-drain the layout differs but results never do.
        assert_same_results(expected, index.search_many(queries, query_days))

        rounds = 1
        while report["shards_deferred"] > 0:
            report = index.compact(
                min_entries=60, max_entries=240, max_rewrite_shards=2
            )
            rounds += 1
            assert rounds < 100, "budgeted compaction failed to converge"
        assert rounds > 1
        # Drained: an unbudgeted pass finds nothing left to rewrite, and the
        # layout honours the same bounds the one-shot reference achieved.
        final = index.compact(min_entries=60, max_entries=240)
        assert final["shards_split"] + final["shards_merged"] == 0
        assert max(index.shard_sizes().values()) <= 240
        assert sum(index.shard_sizes().values()) == len(ids)
        assert_same_results(expected, index.search_many(queries, query_days))

    def test_budget_policy_validation_and_auto_reprime(self):
        """Policy validates the budget; auto passes re-arm when deferred."""
        with pytest.raises(ValueError):
            CompactionPolicy(max_rewrite_shards=0)
        similarity = SimilarityConfig(alpha=0.3, k=3)
        policy = CompactionPolicy(
            min_entries=10,
            max_entries=40,
            auto=True,
            check_every=100,
            max_rewrite_shards=2,
        )
        index = ShardedVectorIndex(similarity, window_days=5.0, compaction=policy)
        rng = np.random.default_rng(19)
        # All 600 entries land in just six 5-day windows, so every shard
        # blows past the 40-entry ceiling and the 2-shard budget cannot
        # clear the backlog in one pass — deferral must re-arm the trigger.
        for start in range(0, 600, 50):
            index.add_many(
                [f"i{start + i}" for i in range(50)],
                rng.standard_normal((50, 4)),
                rng.uniform(0.0, 30.0, size=50),
                ["A", "B"] * 25,
            )
        # The tiny budget forces many auto passes instead of one big one.
        assert index.stats()["compactions"] >= 2.0
        sizes = index.shard_sizes().values()
        assert sum(sizes) == 600

    def test_auto_trigger_policy(self):
        similarity = SimilarityConfig(alpha=0.3, k=3)
        policy = CompactionPolicy(
            min_entries=30, max_entries=80, auto=True, check_every=100
        )
        index = ShardedVectorIndex(
            similarity, window_days=5.0, compaction=policy
        )
        rng = np.random.default_rng(13)
        for start in range(0, 400, 50):
            index.add_many(
                [f"i{start + i}" for i in range(50)],
                rng.standard_normal((50, 4)),
                rng.uniform(0.0, 100.0, size=50),
                ["A", "B"] * 25,
            )
        assert index.stats()["compactions"] >= 1.0
        # update_category still works after entries moved between shards.
        index.update_category("i7", "Rewritten")
        assert index.get("i7").category == "Rewritten"


class TestCompactionPersistence:
    def test_compact_save_load_roundtrip(self, tmp_path):
        """Satellite: compact -> save -> load -> identical search results."""
        similarity = SimilarityConfig(alpha=0.3, k=5)
        index = ShardedVectorIndex(similarity, window_days=WINDOW)
        ids, vectors, days, categories = skewed_corpus(total=2_000)
        index.add_many(ids, vectors, days, categories)
        index.update_category(ids[11], "Rewritten")
        index.compact(min_entries=80, max_entries=400)
        target = str(tmp_path / "compacted-index")
        index.save(target)

        with open(os.path.join(target, "manifest.json"), encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["format"] == "sharded-vector-index"
        assert manifest["version"] == 3
        # v3 packs every shard into one mmap-able arena file; no per-shard
        # .npz archives are written.
        assert os.path.exists(os.path.join(target, manifest["arena"]["file"]))
        assert not [
            name for name in os.listdir(target) if name.endswith(".npz")
        ]
        total_rows = 0
        for meta in manifest["shards"]:
            assert meta["start_day"] < meta["end_day"]
            total_rows += len(meta["ids"])
        assert total_rows == len(index)

        loaded = ShardedVectorIndex.load(target, similarity=similarity)
        assert len(loaded) == len(index)
        assert loaded.get(ids[11]).category == "Rewritten"
        assert loaded.shard_sizes() == index.shard_sizes()
        rng = np.random.default_rng(21)
        queries = rng.standard_normal((6, DIM))
        query_days = rng.uniform(0.0, 760.0, size=6)
        assert_same_results(
            index.search_many(queries, query_days),
            loaded.search_many(queries, query_days),
        )
        # Post-load inserts route into the restored compacted ranges.
        loaded.add("fresh", rng.standard_normal(DIM), 100.0, "Fresh")
        assert "fresh" in loaded

    def test_version_2_save_roundtrip(self, tmp_path):
        """``save(version=2)`` keeps emitting the per-shard .npz layout."""
        similarity = SimilarityConfig(alpha=0.3, k=5)
        index = ShardedVectorIndex(similarity, window_days=WINDOW)
        ids, vectors, days, categories = skewed_corpus(total=800)
        index.add_many(ids, vectors, days, categories)
        target = str(tmp_path / "legacy-index")
        index.save(target, version=2)

        with open(os.path.join(target, "manifest.json"), encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["version"] == 2
        for meta in manifest["shards"]:
            assert os.path.exists(os.path.join(target, meta["file"]))

        loaded = ShardedVectorIndex.load(target, similarity=similarity)
        assert len(loaded) == len(index)
        assert loaded.shard_sizes() == index.shard_sizes()
        rng = np.random.default_rng(33)
        queries = rng.standard_normal((4, DIM))
        query_days = rng.uniform(0.0, 760.0, size=4)
        assert_same_results(
            index.search_many(queries, query_days),
            loaded.search_many(queries, query_days),
        )

    def test_load_index_forwards_runtime_knobs(self, tmp_path):
        """The dispatching loader restores max_workers and the policy.

        Runtime knobs are not persisted, so a deployment that reloads via
        ``load_index`` must be able to hand them back — otherwise a
        restarted index silently drops auto-compaction.
        """
        similarity = SimilarityConfig(alpha=0.3, k=4)
        index = ShardedVectorIndex(similarity, window_days=20.0)
        rng = np.random.default_rng(9)
        index.add_many(
            [f"i{i}" for i in range(40)],
            rng.standard_normal((40, 5)),
            rng.uniform(0.0, 100.0, size=40),
            [f"c{i % 4}" for i in range(40)],
        )
        target = str(tmp_path / "knobs-index")
        index.save(target)
        policy = CompactionPolicy(min_entries=4, max_entries=32, auto=True)
        loaded = load_index(
            target, similarity=similarity, max_workers=2, compaction=policy
        )
        assert isinstance(loaded, ShardedVectorIndex)
        assert loaded.max_workers == 2
        assert loaded.compaction is policy

    def test_version_1_manifest_still_loads(self, tmp_path):
        """Pre-compaction saves (no day ranges in the manifest) stay readable."""
        similarity = SimilarityConfig(alpha=0.3, k=4)
        index = ShardedVectorIndex(similarity, window_days=20.0)
        rng = np.random.default_rng(4)
        index.add_many(
            [f"i{i}" for i in range(60)],
            rng.standard_normal((60, 5)),
            rng.uniform(0.0, 100.0, size=60),
            [f"c{i % 4}" for i in range(60)],
        )
        target = str(tmp_path / "v1-index")
        index.save(target, version=2)
        manifest_path = os.path.join(target, "manifest.json")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["version"] = 1
        manifest.pop("next_shard_key")
        for meta in manifest["shards"]:
            meta.pop("start_day")
            meta.pop("end_day")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        loaded = ShardedVectorIndex.load(target, similarity=similarity)
        assert len(loaded) == 60
        query = rng.standard_normal(5)
        assert_same_results(
            [index.search(query, 90.0)], [loaded.search(query, 90.0)]
        )
        loaded.add("later", rng.standard_normal(5), 45.0, "c1")
        assert len(loaded.shard_sizes()) == len(index.shard_sizes())
