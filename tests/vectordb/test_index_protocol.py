"""Tests for the pluggable retrieval layer: protocol, parity and persistence.

The contract under test: the flat and sharded index implementations return
*identical* neighbour lists for every query — sharding and bound-based
pruning are invisible to callers.  Alongside the parity property tests sit
the persistence round-trip regressions (dtype, capacity re-growth, cached
squared-norm extension) backing the independent-shard persistence work, and
the loud-KeyError contract of ``update_category`` on both backends.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vectordb import (
    FlatVectorIndex,
    ShardedVectorIndex,
    SimilarityConfig,
    VectorIndex,
    VectorStore,
    build_index,
    load_index,
    time_bucket,
)


def populated(index, count=400, dim=8, seed=9, categories=23, duration=120.0):
    rng = np.random.default_rng(seed)
    index.add_many(
        incident_ids=[f"i{i}" for i in range(count)],
        vectors=rng.standard_normal((count, dim)),
        created_days=rng.uniform(0.0, duration, size=count),
        categories=[f"cat{i % categories}" for i in range(count)],
        texts=[f"text {i}" for i in range(count)],
    )
    return index


def both_indexes(similarity, window_days=15.0, **kwargs):
    flat = populated(FlatVectorIndex(similarity), **kwargs)
    sharded = populated(ShardedVectorIndex(similarity, window_days=window_days), **kwargs)
    return flat, sharded


def assert_same_results(flat_results, sharded_results):
    assert len(flat_results) == len(sharded_results)
    for flat_neighbors, sharded_neighbors in zip(flat_results, sharded_results):
        assert [n.incident_id for n in flat_neighbors] == [
            n.incident_id for n in sharded_neighbors
        ]
        assert [n.similarity for n in sharded_neighbors] == pytest.approx(
            [n.similarity for n in flat_neighbors]
        )


class TestFlatShardedParity:
    @pytest.mark.parametrize("alpha", [0.0, 0.3, 0.9])
    @pytest.mark.parametrize("diverse", [True, False])
    def test_plain_search_parity(self, alpha, diverse):
        similarity = SimilarityConfig(alpha=alpha, k=5, diverse_categories=diverse)
        flat, sharded = both_indexes(similarity)
        rng = np.random.default_rng(31)
        queries = rng.standard_normal((10, 8))
        days = rng.uniform(0.0, 150.0, size=10)
        assert_same_results(
            flat.search_many(queries, days), sharded.search_many(queries, days)
        )

    def test_filtered_search_parity(self):
        similarity = SimilarityConfig(alpha=0.3, k=4)
        flat, sharded = both_indexes(similarity)
        rng = np.random.default_rng(5)
        queries = rng.standard_normal((6, 8))
        days = rng.uniform(60.0, 130.0, size=6)
        excludes = [{f"i{row}", f"i{row + 17}"} for row in range(6)]
        for kwargs in (
            dict(exclude_ids=excludes),
            dict(history_before_day=90.0),
            dict(categories={f"cat{i}" for i in range(7)}),
            dict(
                exclude_ids=excludes,
                history_before_day=100.0,
                categories={f"cat{i}" for i in range(12)},
                k=7,
            ),
        ):
            assert_same_results(
                flat.search_many(queries, days, **kwargs),
                sharded.search_many(queries, days, **kwargs),
            )

    def test_scalar_search_matches_batch(self):
        similarity = SimilarityConfig(alpha=0.3, k=5)
        _, sharded = both_indexes(similarity)
        rng = np.random.default_rng(77)
        query = rng.standard_normal(8)
        single = sharded.search(query, query_day=110.0)
        batch = sharded.search_many(query.reshape(1, -1), [110.0])[0]
        assert [n.incident_id for n in single] == [n.incident_id for n in batch]

    @given(
        entries=st.lists(
            st.tuples(
                st.lists(
                    st.floats(-5, 5, allow_nan=False, width=32), min_size=3, max_size=3
                ),
                st.floats(0, 100, allow_nan=False),
                st.sampled_from(["A", "B", "C", "D"]),
            ),
            min_size=1,
            max_size=40,
        ),
        query=st.lists(
            st.floats(-5, 5, allow_nan=False, width=32), min_size=3, max_size=3
        ),
        query_day=st.floats(0, 120, allow_nan=False),
        alpha=st.sampled_from([0.0, 0.3, 1.0]),
        k=st.integers(1, 6),
        diverse=st.booleans(),
        window=st.sampled_from([3.0, 10.0, 40.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_parity_property(self, entries, query, query_day, alpha, k, diverse, window):
        """Random stores, windows and configs: identical neighbour lists."""
        similarity = SimilarityConfig(alpha=alpha, k=k, diverse_categories=diverse)
        flat = FlatVectorIndex(similarity)
        sharded = ShardedVectorIndex(similarity, window_days=window)
        for index, (vector, day, category) in enumerate(entries):
            for target in (flat, sharded):
                target.add(f"i{index}", np.array(vector), day, category)
        assert_same_results(
            [flat.search(np.array(query), query_day)],
            [sharded.search(np.array(query), query_day)],
        )

    def test_empty_category_filter_means_no_filter_on_both_backends(self):
        similarity = SimilarityConfig(alpha=0.3, k=4)
        flat, sharded = both_indexes(similarity, count=60)
        rng = np.random.default_rng(17)
        queries = rng.standard_normal((3, 8))
        days = rng.uniform(0.0, 120.0, size=3)
        flat_results = flat.search_many(queries, days, categories=set())
        sharded_results = sharded.search_many(queries, days, categories=set())
        assert all(len(neighbors) == 4 for neighbors in flat_results)
        assert_same_results(flat_results, sharded_results)

    def test_duplicate_queries_deduplicated_in_batch(self):
        """Recurring identical queries are scanned once and share results."""
        similarity = SimilarityConfig(alpha=0.3, k=5)
        _, sharded = both_indexes(similarity)
        rng = np.random.default_rng(41)
        query = rng.standard_normal(8)
        stacked = np.vstack([query] * 6)
        before = sharded.stats()["shards_scanned"]
        results = sharded.search_many(stacked, [100.0] * 6)
        scanned = sharded.stats()["shards_scanned"] - before
        single = sharded.search(query, 100.0)
        for neighbors in results:
            assert [n.incident_id for n in neighbors] == [
                n.incident_id for n in single
            ]
        # 6 identical queries must not scan 6x the shards of one query.
        assert scanned <= 2 * sharded.stats()["shard_count"]
        # Result lists must still be independent objects.
        results[0].pop()
        assert len(results[1]) == 5

    def test_parity_survives_category_updates(self):
        similarity = SimilarityConfig(alpha=0.3, k=5)
        flat, sharded = both_indexes(similarity)
        for incident_id in ("i3", "i77", "i201"):
            flat.update_category(incident_id, "Corrected")
            sharded.update_category(incident_id, "Corrected")
        rng = np.random.default_rng(13)
        queries = rng.standard_normal((5, 8))
        days = rng.uniform(100.0, 140.0, size=5)
        assert_same_results(
            flat.search_many(queries, days), sharded.search_many(queries, days)
        )


class TestShardLayoutAndPruning:
    def test_entries_land_in_time_window_shards(self):
        similarity = SimilarityConfig()
        sharded = populated(ShardedVectorIndex(similarity, window_days=15.0))
        sizes = sharded.shard_sizes()
        assert sum(sizes.values()) == len(sharded) == 400
        for key in sizes:
            assert 0 <= key <= time_bucket(120.0, 15.0)
        entry = sharded.get("i0")
        assert time_bucket(entry.created_day, 15.0) in sizes

    def test_temporal_pruning_scans_minority_of_shards(self):
        similarity = SimilarityConfig(alpha=0.3, k=5)
        sharded = populated(
            ShardedVectorIndex(similarity, window_days=10.0),
            count=3000,
            duration=300.0,
        )
        rng = np.random.default_rng(3)
        queries = rng.standard_normal((8, 8))
        sharded.search_many(queries, rng.uniform(280.0, 300.0, size=8))
        stats = sharded.stats()
        assert stats["shard_count"] >= 25
        assert stats["scanned_shard_ratio"] < 0.5
        assert stats["shards_pruned"] > 0

    def test_alpha_zero_never_prunes(self):
        similarity = SimilarityConfig(alpha=0.0, k=5)
        sharded = populated(ShardedVectorIndex(similarity, window_days=10.0))
        rng = np.random.default_rng(3)
        sharded.search_many(rng.standard_normal((4, 8)), [0.0, 40.0, 80.0, 120.0])
        stats = sharded.stats()
        assert stats["shards_pruned"] == 0.0
        assert stats["scanned_shard_ratio"] == pytest.approx(1.0)

    def test_stats_shape_is_shared_across_backends(self):
        flat, sharded = both_indexes(SimilarityConfig())
        rng = np.random.default_rng(1)
        for index in (flat, sharded):
            index.search_many(rng.standard_normal((3, 8)), [10.0, 50.0, 90.0])
            stats = index.stats()
            assert stats["entries"] == 400.0
            assert stats["queries"] == 3.0
            assert 0.0 < stats["scanned_shard_ratio"] <= 1.0
        assert flat.stats()["shard_count"] == 1.0
        assert sharded.stats()["shard_count"] > 1.0


class TestUpdateCategoryContract:
    """Satellite: unknown ids must fail loudly, naming the id, on both backends."""

    @pytest.mark.parametrize("backend", ["flat", "sharded"])
    def test_unknown_id_raises_keyerror_with_id(self, backend):
        index = populated(build_index(backend, SimilarityConfig()), count=20)
        with pytest.raises(KeyError, match="INC-MISSING-42"):
            index.update_category("INC-MISSING-42", "NewLabel")

    @pytest.mark.parametrize("backend", ["flat", "sharded"])
    def test_known_id_updates_in_place(self, backend):
        index = populated(build_index(backend, SimilarityConfig()), count=20)
        index.update_category("i7", "Corrected")
        assert index.get("i7").category == "Corrected"
        assert "Corrected" in index.categories()

    def test_vector_store_unknown_id_raises_keyerror_with_id(self):
        store = VectorStore()
        store.add("present", np.ones(3), 1.0, "A")
        with pytest.raises(KeyError, match="absent"):
            store.update_category("absent", "B")


class TestPersistence:
    """Satellite: save/load round trips guard the shard persistence work."""

    def test_store_roundtrip_dtype_and_capacity_regrowth(self, tmp_path):
        store = VectorStore()
        rng = np.random.default_rng(8)
        vectors = rng.standard_normal((70, 6)).astype(np.float32)  # narrower input
        store.add_many(
            incident_ids=[f"i{i}" for i in range(70)],
            vectors=vectors,
            created_days=[float(i) for i in range(70)],
            categories=[f"cat{i % 5}" for i in range(70)],
        )
        path = str(tmp_path / "flat.npz")
        store.save(path)
        loaded = VectorStore.load(path)
        # dtype: the store always widens to float64, including through disk.
        assert loaded.matrix().dtype == np.float64
        assert loaded.created_days().dtype == np.float64
        # capacity re-growth: keep inserting far beyond the loaded size.
        more = rng.standard_normal((200, 6))
        loaded.add_many(
            incident_ids=[f"j{i}" for i in range(200)],
            vectors=more,
            created_days=[float(i) for i in range(200)],
            categories=["late"] * 200,
        )
        assert len(loaded) == 270
        np.testing.assert_allclose(loaded.matrix()[70:], more)

    def test_store_roundtrip_squared_norm_cache_extension(self, tmp_path):
        store = VectorStore()
        store.add_many(
            incident_ids=["a", "b"],
            vectors=np.array([[3.0, 4.0], [1.0, 0.0]]),
            created_days=[1.0, 2.0],
            categories=["A", "B"],
        )
        path = str(tmp_path / "norms.npz")
        store.save(path)
        loaded = VectorStore.load(path)
        np.testing.assert_allclose(loaded.squared_norms(), [25.0, 1.0])
        # The cache must extend (not go stale) when rows are added after a
        # load-then-score sequence.
        loaded.add("c", np.array([2.0, 2.0]), 3.0, "C")
        np.testing.assert_allclose(loaded.squared_norms(), [25.0, 1.0, 8.0])

    def test_sharded_roundtrip_with_independent_shard_files(self, tmp_path):
        """The legacy v2 layout (one .npz per shard) still round-trips."""
        similarity = SimilarityConfig(alpha=0.3, k=4)
        sharded = populated(ShardedVectorIndex(similarity, window_days=20.0))
        sharded.update_category("i11", "Rewritten")
        target = str(tmp_path / "sharded-index")
        sharded.save(target, version=2)
        files = sorted(os.listdir(target))
        assert "manifest.json" in files
        shard_files = [name for name in files if name.startswith("shard-")]
        assert len(shard_files) == len(sharded.shard_sizes())
        loaded = ShardedVectorIndex.load(target, similarity=similarity)
        assert len(loaded) == len(sharded)
        assert loaded.get("i11").category == "Rewritten"
        rng = np.random.default_rng(21)
        queries = rng.standard_normal((5, 8))
        days = rng.uniform(0.0, 140.0, size=5)
        assert_same_results(
            sharded.search_many(queries, days), loaded.search_many(queries, days)
        )
        # New inserts keep working post-load (sequence numbers continue).
        loaded.add("fresh", rng.standard_normal(8), 130.0, "Fresh")
        assert "fresh" in loaded

    def test_sharded_v3_arena_roundtrip(self, tmp_path):
        """The default save is the v3 single-arena layout and round-trips."""
        similarity = SimilarityConfig(alpha=0.3, k=4)
        sharded = populated(ShardedVectorIndex(similarity, window_days=20.0))
        sharded.update_category("i11", "Rewritten")
        target = str(tmp_path / "arena-index")
        sharded.save(target)
        files = sorted(os.listdir(target))
        assert files == ["arena.bin", "manifest.json"]
        loaded = ShardedVectorIndex.load(target, similarity=similarity)
        assert len(loaded) == len(sharded)
        assert loaded.get("i11").category == "Rewritten"
        assert loaded.shard_sizes() == sharded.shard_sizes()
        rng = np.random.default_rng(21)
        queries = rng.standard_normal((5, 8))
        days = rng.uniform(0.0, 140.0, size=5)
        assert_same_results(
            sharded.search_many(queries, days), loaded.search_many(queries, days)
        )
        # The mmap'd matrices are copy-on-grow: post-load inserts still work.
        loaded.add("fresh", rng.standard_normal(8), 130.0, "Fresh")
        assert "fresh" in loaded
        assert_same_results(
            sharded.search_many(queries, days, exclude_ids=[{"fresh"}] * 5),
            loaded.search_many(queries, days, exclude_ids=[{"fresh"}] * 5),
        )
        loaded.close()

    def test_store_and_index_accept_pathlib_paths(self, tmp_path):
        """Satellite: every save/load entry point takes ``pathlib.Path``."""
        store = VectorStore()
        rng = np.random.default_rng(15)
        store.add_many(
            incident_ids=[f"i{i}" for i in range(12)],
            vectors=rng.standard_normal((12, 4)),
            created_days=[float(i) for i in range(12)],
            categories=[f"cat{i % 3}" for i in range(12)],
        )
        store_path = tmp_path / "store.npz"  # a Path, not a str
        store.save(store_path)
        loaded_store = VectorStore.load(store_path)
        assert len(loaded_store) == 12
        np.testing.assert_array_equal(loaded_store.matrix(), store.matrix())
        # ...and without the .npz suffix (the legacy str path appended it).
        assert len(VectorStore.load(tmp_path / "store")) == 12

        similarity = SimilarityConfig(alpha=0.3, k=3)
        sharded = populated(ShardedVectorIndex(similarity, window_days=20.0), count=50)
        index_path = tmp_path / "path-index"
        sharded.save(index_path)
        reloaded = load_index(index_path, similarity=similarity)
        assert isinstance(reloaded, ShardedVectorIndex)
        assert len(reloaded) == 50
        query = rng.standard_normal(8)
        assert_same_results(
            [sharded.search(query, 60.0)], [reloaded.search(query, 60.0)]
        )
        reloaded.close()

    def test_load_index_dispatches_on_layout(self, tmp_path):
        similarity = SimilarityConfig(alpha=0.3, k=3)
        flat, sharded = both_indexes(similarity, count=30)
        flat_path = str(tmp_path / "flat.npz")
        sharded_path = str(tmp_path / "sharded")
        flat.save(flat_path)
        sharded.save(sharded_path)
        reloaded_flat = load_index(flat_path, similarity=similarity)
        reloaded_sharded = load_index(sharded_path, similarity=similarity)
        assert isinstance(reloaded_flat, FlatVectorIndex)
        assert isinstance(reloaded_sharded, ShardedVectorIndex)
        assert isinstance(reloaded_flat, VectorIndex)
        assert isinstance(reloaded_sharded, VectorIndex)
        rng = np.random.default_rng(2)
        query = rng.standard_normal(8)
        assert_same_results(
            [reloaded_flat.search(query, 50.0)], [reloaded_sharded.search(query, 50.0)]
        )


class TestBuildIndex:
    def test_build_index_backends(self):
        assert isinstance(build_index("flat"), FlatVectorIndex)
        assert isinstance(build_index("sharded", window_days=5.0), ShardedVectorIndex)
        with pytest.raises(ValueError):
            build_index("annoy")

    def test_sharded_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ShardedVectorIndex(window_days=0.0)
        with pytest.raises(ValueError):
            time_bucket(10.0, -1.0)

    def test_empty_and_duplicate_handling(self):
        sharded = ShardedVectorIndex()
        assert len(sharded) == 0
        assert sharded.search_many(np.ones((2, 4)), [1.0, 2.0]) == [[], []]
        sharded.add("a", np.ones(4), 1.0, "A")
        with pytest.raises(ValueError):
            sharded.add("a", np.ones(4), 2.0, "B")
        with pytest.raises(ValueError):
            sharded.add_many(
                ["b", "b"], np.ones((2, 4)), [1.0, 2.0], ["X", "Y"]
            )
        with pytest.raises(ValueError):
            sharded.add("c", np.ones(3), 1.0, "C")  # dimension mismatch
        assert len(sharded) == 1  # failed inserts leave the index untouched

    def test_guarantee_min_k_eligible(self):
        # 6 entries across far-apart windows, k larger than any single shard:
        # the result must still be filled to min(k, eligible).
        similarity = SimilarityConfig(alpha=0.5, k=5, diverse_categories=True)
        sharded = ShardedVectorIndex(similarity, window_days=5.0)
        for index in range(6):
            sharded.add(f"i{index}", np.eye(6)[index], index * 30.0, f"cat{index % 2}")
        neighbors = sharded.search(np.ones(6), query_day=150.0)
        assert len(neighbors) == 5
