"""Parallel shard scoring: exact parity with the sequential and flat paths.

The contract of the worker-pool execution mode: ``max_workers`` changes
*scheduling only*.  Neighbour lists — including tie breaks on tie-heavy
corpora — and every scan-statistics counter must be bit-identical between
flat, sequential-sharded and parallel-sharded execution, because prune
decisions are taken against the pool state as of wave start and every
state mutation is folded on the calling thread in deterministic order.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vectordb import FlatVectorIndex, ShardedVectorIndex, SimilarityConfig


def populated(index, count=400, dim=8, seed=9, categories=23, duration=120.0):
    rng = np.random.default_rng(seed)
    index.add_many(
        incident_ids=[f"i{i}" for i in range(count)],
        vectors=rng.standard_normal((count, dim)),
        created_days=rng.uniform(0.0, duration, size=count),
        categories=[f"cat{i % categories}" for i in range(count)],
        texts=[f"text {i}" for i in range(count)],
    )
    return index


def triple(similarity, window_days=15.0, workers=3, **kwargs):
    """(flat, sequential sharded, parallel sharded) over identical entries."""
    flat = populated(FlatVectorIndex(similarity), **kwargs)
    sequential = populated(
        ShardedVectorIndex(similarity, window_days=window_days, max_workers=1),
        **kwargs,
    )
    parallel = populated(
        ShardedVectorIndex(similarity, window_days=window_days, max_workers=workers),
        **kwargs,
    )
    return flat, sequential, parallel


def assert_same_results(reference, candidates):
    assert len(reference) == len(candidates)
    for ref_neighbors, cand_neighbors in zip(reference, candidates):
        assert [n.incident_id for n in ref_neighbors] == [
            n.incident_id for n in cand_neighbors
        ]
        assert [n.similarity for n in cand_neighbors] == pytest.approx(
            [n.similarity for n in ref_neighbors]
        )


def assert_bitwise_results(reference, candidates):
    """Sharded modes at fixed settings must agree to the last bit."""
    assert len(reference) == len(candidates)
    for ref_neighbors, cand_neighbors in zip(reference, candidates):
        assert [(n.incident_id, n.similarity) for n in ref_neighbors] == [
            (n.incident_id, n.similarity) for n in cand_neighbors
        ]


class TestParallelParity:
    @pytest.mark.parametrize("alpha", [0.0, 0.3, 0.9])
    @pytest.mark.parametrize("diverse", [True, False])
    def test_plain_search_parity(self, alpha, diverse):
        similarity = SimilarityConfig(alpha=alpha, k=5, diverse_categories=diverse)
        flat, sequential, parallel = triple(similarity)
        rng = np.random.default_rng(31)
        queries = rng.standard_normal((10, 8))
        days = rng.uniform(0.0, 150.0, size=10)
        reference = flat.search_many(queries, days)
        assert_same_results(reference, sequential.search_many(queries, days))
        assert_same_results(reference, parallel.search_many(queries, days))

    def test_filtered_search_parity(self):
        similarity = SimilarityConfig(alpha=0.3, k=4)
        flat, sequential, parallel = triple(similarity)
        rng = np.random.default_rng(5)
        queries = rng.standard_normal((6, 8))
        days = rng.uniform(60.0, 130.0, size=6)
        excludes = [{f"i{row}", f"i{row + 17}"} for row in range(6)]
        for kwargs in (
            dict(exclude_ids=excludes),
            dict(history_before_day=90.0),
            dict(categories={f"cat{i}" for i in range(7)}),
            dict(
                exclude_ids=excludes,
                history_before_day=100.0,
                categories={f"cat{i}" for i in range(12)},
                k=7,
            ),
        ):
            reference = flat.search_many(queries, days, **kwargs)
            assert_same_results(
                reference, sequential.search_many(queries, days, **kwargs)
            )
            assert_same_results(
                reference, parallel.search_many(queries, days, **kwargs)
            )

    @given(
        entries=st.lists(
            st.tuples(
                # Tie-heavy on purpose: tiny integer coordinate alphabet and
                # integer days make many (distance, day-gap) pairs — and
                # therefore scores — exactly equal, so tie-breaking by
                # global insertion sequence is what is actually under test.
                st.lists(st.sampled_from([-1.0, 0.0, 1.0]), min_size=3, max_size=3),
                st.integers(0, 30).map(float),
                st.sampled_from(["A", "B"]),
            ),
            min_size=1,
            max_size=40,
        ),
        query=st.lists(st.sampled_from([-1.0, 0.0, 1.0]), min_size=3, max_size=3),
        query_day=st.integers(0, 40).map(float),
        alpha=st.sampled_from([0.0, 0.3, 1.0]),
        k=st.integers(1, 6),
        diverse=st.booleans(),
        window=st.sampled_from([3.0, 10.0]),
    )
    @settings(max_examples=50, deadline=None)
    def test_tie_heavy_parity_property(
        self, entries, query, query_day, alpha, k, diverse, window
    ):
        """Tie-heavy corpora: parallel == sequential == flat, exactly."""
        similarity = SimilarityConfig(alpha=alpha, k=k, diverse_categories=diverse)
        flat = FlatVectorIndex(similarity)
        sequential = ShardedVectorIndex(similarity, window_days=window, max_workers=1)
        parallel = ShardedVectorIndex(similarity, window_days=window, max_workers=3)
        for index, (vector, day, category) in enumerate(entries):
            for target in (flat, sequential, parallel):
                target.add(f"i{index}", np.array(vector), day, category)
        reference = [flat.search(np.array(query), query_day)]
        assert_same_results(
            reference, [sequential.search(np.array(query), query_day)]
        )
        assert_same_results(reference, [parallel.search(np.array(query), query_day)])


class TestProcessBackendParity:
    """The shared-memory process backend: same contract, different transport.

    Workers attach to the arena by name and never receive vectors, so the
    parity bar is the same as for threads: results *and* every stats
    counter bit-identical to sequential execution at fixed settings.
    """

    STAT_KEYS = (
        "queries",
        "shards_considered",
        "shards_scanned",
        "shards_pruned",
        "shards_skipped",
        "entries_scanned",
        "scanned_shard_ratio",
        "scanned_entry_ratio",
    )

    def test_process_results_and_stats_bitwise_identical(self):
        similarity = SimilarityConfig(alpha=0.3, k=5, diverse_categories=True)
        sequential = populated(
            ShardedVectorIndex(similarity, window_days=10.0, max_workers=1),
            count=900,
            duration=240.0,
        )
        threaded = populated(
            ShardedVectorIndex(similarity, window_days=10.0, max_workers=3),
            count=900,
            duration=240.0,
        )
        process = populated(
            ShardedVectorIndex(
                similarity,
                window_days=10.0,
                max_workers=3,
                scoring_backend="process",
            ),
            count=900,
            duration=240.0,
        )
        rng = np.random.default_rng(23)
        queries = rng.standard_normal((12, 8))
        days = rng.uniform(0.0, 260.0, size=12)
        excludes = [
            {f"i{row}", f"i{row + 31}"} if row % 2 == 0 else None
            for row in range(12)
        ]
        kwargs = dict(
            exclude_ids=excludes,
            history_before_day=230.0,
            categories={f"cat{i}" for i in range(15)},
        )
        try:
            reference = sequential.search_many(queries, days, **kwargs)
            assert_bitwise_results(
                reference, threaded.search_many(queries, days, **kwargs)
            )
            assert_bitwise_results(
                reference, process.search_many(queries, days, **kwargs)
            )
            seq_stats = sequential.stats()
            proc_stats = process.stats()
            for name in self.STAT_KEYS:
                assert seq_stats[name] == proc_stats[name], name
            assert proc_stats["shards_pruned"] > 0
            assert process.scoring_backend == "process"
        finally:
            process.close()

    def test_process_backend_survives_inserts_between_searches(self):
        """Arena remaps after ingest: readers see the new epoch, not stale data."""
        similarity = SimilarityConfig(alpha=0.3, k=4)
        sequential = ShardedVectorIndex(similarity, window_days=15.0, max_workers=1)
        process = ShardedVectorIndex(
            similarity, window_days=15.0, max_workers=2, scoring_backend="process"
        )
        rng = np.random.default_rng(7)
        queries = rng.standard_normal((5, 8))
        days = rng.uniform(0.0, 150.0, size=5)
        try:
            for wave in range(3):
                ids = [f"w{wave}-{i}" for i in range(150)]
                vectors = rng.standard_normal((150, 8))
                created = rng.uniform(0.0, 140.0, size=150)
                categories = [f"cat{i % 9}" for i in range(150)]
                for target in (sequential, process):
                    target.add_many(ids, vectors, created, categories)
                assert_bitwise_results(
                    sequential.search_many(queries, days),
                    process.search_many(queries, days),
                )
        finally:
            process.close()

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ShardedVectorIndex(SimilarityConfig(), scoring_backend="mpi")

    def test_process_index_close_then_reuse(self):
        """close() tears down pool and arena; next search respawns both."""
        similarity = SimilarityConfig(alpha=0.3, k=4)
        process = populated(
            ShardedVectorIndex(
                similarity, window_days=15.0, max_workers=2,
                scoring_backend="process",
            ),
            count=300,
        )
        rng = np.random.default_rng(17)
        queries = rng.standard_normal((4, 8))
        days = rng.uniform(0.0, 130.0, size=4)
        first = process.search_many(queries, days)
        process.close()
        process.close()  # idempotent
        assert_bitwise_results(first, process.search_many(queries, days))
        process.close()


class TestParallelStats:
    def test_counters_identical_to_sequential(self):
        """Satellite: scan statistics are race-free and mode-independent.

        Counters accumulate via per-shard payloads reduced on the calling
        thread at wave end, so the parallel scan must report exactly the
        sequential numbers — scanned, pruned, skipped and entry counts.
        """
        similarity = SimilarityConfig(alpha=0.3, k=5)
        _, sequential, parallel = triple(
            similarity, window_days=10.0, workers=4, count=1200, duration=240.0
        )
        rng = np.random.default_rng(3)
        queries = rng.standard_normal((16, 8))
        days = rng.uniform(0.0, 260.0, size=16)
        # Mix plain, duplicate and excluded queries to cover every path.
        stacked = np.vstack([queries, queries[:4]])
        stacked_days = np.concatenate([days, days[:4]])
        excludes = [
            {f"i{row}"} if row % 3 == 0 else None for row in range(stacked.shape[0])
        ]
        sequential.search_many(stacked, stacked_days, exclude_ids=excludes)
        parallel.search_many(stacked, stacked_days, exclude_ids=excludes)
        seq_stats = sequential.stats()
        par_stats = parallel.stats()
        for name in (
            "queries",
            "shards_considered",
            "shards_scanned",
            "shards_pruned",
            "shards_skipped",
            "entries_scanned",
            "scanned_shard_ratio",
            "scanned_entry_ratio",
        ):
            assert seq_stats[name] == par_stats[name], name
        assert par_stats["shards_pruned"] > 0
        assert par_stats["max_workers"] == 4.0

    def test_stats_report_effective_workers(self):
        index = ShardedVectorIndex(SimilarityConfig(), max_workers=2)
        assert index.stats()["max_workers"] == 2.0
        auto = ShardedVectorIndex(SimilarityConfig())
        assert auto.stats()["max_workers"] >= 1.0

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError):
            ShardedVectorIndex(SimilarityConfig(), max_workers=0)

    def test_pool_is_reused_and_close_respawns(self):
        """The scoring pool is cached across calls; close() is idempotent."""
        similarity = SimilarityConfig(alpha=0.3, k=4)
        _, _, parallel = triple(similarity, workers=3, count=300)
        rng = np.random.default_rng(17)
        queries = rng.standard_normal((6, 8))
        days = rng.uniform(0.0, 130.0, size=6)
        first = parallel.search_many(queries, days)
        pool = parallel._executor  # noqa: SLF001
        assert pool is not None
        parallel.search_many(queries, days)
        assert parallel._executor is pool  # noqa: SLF001 - reused, not respawned
        parallel.close()
        parallel.close()
        assert parallel._executor is None  # noqa: SLF001
        assert_same_results(first, parallel.search_many(queries, days))
        assert parallel._executor is not None  # noqa: SLF001 - respawned on use

    def test_parallel_index_survives_deepcopy(self):
        """No pool/lock state may stick to the index (benchmarks deepcopy it)."""
        similarity = SimilarityConfig(alpha=0.3, k=4)
        _, _, parallel = triple(similarity, workers=3, count=120)
        rng = np.random.default_rng(8)
        queries = rng.standard_normal((4, 8))
        days = rng.uniform(0.0, 130.0, size=4)
        before = parallel.search_many(queries, days)
        clone = copy.deepcopy(parallel)
        assert_same_results(before, clone.search_many(queries, days))
