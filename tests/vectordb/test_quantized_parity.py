"""int8 quantize-then-exact-rerank: the prefilter must be invisible.

The contract of ``quantized_prefilter=True``: the int8 screen only
*skips* rows whose conservative upper bound proves they cannot enter the
candidate pool, and every surviving row is re-scored with the exact
float64 formula.  Selected neighbours — ids and ranking — and every scan
counter are identical to the pure-float path.  Scores agree to BLAS
shape-dependent rounding in general, and to the last bit whenever the
dot products are exactly representable (integer-valued vectors at any
power-of-two scale), which is what the hypothesis property pins down.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vectordb import FlatVectorIndex, ShardedVectorIndex, SimilarityConfig


def pair(similarity, window_days=15.0, **kwargs):
    """(plain sequential, prefiltered sequential) sharded indexes."""
    plain = ShardedVectorIndex(
        similarity, window_days=window_days, max_workers=1, **kwargs
    )
    filtered = ShardedVectorIndex(
        similarity,
        window_days=window_days,
        max_workers=1,
        quantized_prefilter=True,
        **kwargs,
    )
    return plain, filtered


def assert_bitwise_results(reference, candidates):
    assert len(reference) == len(candidates)
    for ref_neighbors, cand_neighbors in zip(reference, candidates):
        assert [(n.incident_id, n.similarity) for n in ref_neighbors] == [
            (n.incident_id, n.similarity) for n in cand_neighbors
        ]


def assert_same_selection(reference, candidates, rel=1e-9):
    """Same ids in the same order; scores within the documented slack."""
    assert len(reference) == len(candidates)
    for ref_neighbors, cand_neighbors in zip(reference, candidates):
        assert [n.incident_id for n in ref_neighbors] == [
            n.incident_id for n in cand_neighbors
        ]
        assert [n.similarity for n in cand_neighbors] == pytest.approx(
            [n.similarity for n in ref_neighbors], rel=rel
        )


STAT_KEYS = (
    "queries",
    "shards_considered",
    "shards_scanned",
    "shards_pruned",
    "shards_skipped",
    "entries_scanned",
)


def assert_same_stats(plain, filtered):
    plain_stats, filtered_stats = plain.stats(), filtered.stats()
    for name in STAT_KEYS:
        assert plain_stats[name] == filtered_stats[name], name


class TestQuantizedExactness:
    @given(
        entries=st.lists(
            st.tuples(
                # Integer coordinates at a power-of-two scale: every dot
                # product, squared norm and distance argument is exactly
                # representable, so the rerank must reproduce the pure
                # float path to the last bit — including through the
                # subset GEMM the prefilter uses for survivors.
                st.lists(st.integers(-8, 8), min_size=3, max_size=3),
                st.integers(0, 30).map(float),
                st.sampled_from(["A", "B", "C"]),
            ),
            min_size=1,
            max_size=40,
        ),
        query=st.lists(st.integers(-8, 8), min_size=3, max_size=3),
        query_day=st.integers(0, 40).map(float),
        scale_exp=st.sampled_from([-30, 0, 30]),
        alpha=st.sampled_from([0.0, 0.3, 1.0]),
        k=st.integers(1, 6),
        diverse=st.booleans(),
        window=st.sampled_from([3.0, 10.0, 50.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_integer_grid_bitwise_parity(
        self, entries, query, query_day, scale_exp, alpha, k, diverse, window
    ):
        scale = 2.0 ** scale_exp
        similarity = SimilarityConfig(alpha=alpha, k=k, diverse_categories=diverse)
        plain, filtered = pair(similarity, window_days=window)
        flat = FlatVectorIndex(similarity)
        for index, (vector, day, category) in enumerate(entries):
            row = np.array(vector, dtype=np.float64) * scale
            for target in (flat, plain, filtered):
                target.add(f"i{index}", row, day, category)
        scaled_query = np.array(query, dtype=np.float64) * scale
        reference = [plain.search(scaled_query, query_day)]
        assert_bitwise_results(reference, [filtered.search(scaled_query, query_day)])
        assert_same_selection(reference, [flat.search(scaled_query, query_day)])
        assert_same_stats(plain, filtered)

    def test_large_single_window_engages_prefilter(self):
        """A 300-row shard with k=3 guarantees the int8 screen actually runs."""
        similarity = SimilarityConfig(alpha=0.3, k=3)
        plain, filtered = pair(similarity, window_days=50.0)
        rng = np.random.default_rng(29)
        vectors = rng.integers(-50, 51, size=(300, 8)).astype(np.float64)
        days = rng.integers(0, 50, size=300).astype(np.float64)
        categories = [f"cat{i % 6}" for i in range(300)]
        ids = [f"i{i}" for i in range(300)]
        for target in (plain, filtered):
            target.add_many(ids, vectors, days, categories)
        queries = rng.integers(-50, 51, size=(8, 8)).astype(np.float64)
        query_days = rng.integers(0, 60, size=8).astype(np.float64)
        assert_bitwise_results(
            plain.search_many(queries, query_days),
            filtered.search_many(queries, query_days),
        )
        assert_same_stats(plain, filtered)

    def test_ties_at_pool_floor(self):
        """Many rows tied exactly at the k-th score: none may be skipped."""
        similarity = SimilarityConfig(alpha=0.0, k=4)
        plain, filtered = pair(similarity, window_days=50.0)
        # 40 duplicates of three distinct vectors: huge tie classes, so the
        # pool floor equals the score of dozens of rows at once.
        base = np.array(
            [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [1.0, 1.0, 1.0]] * 14
        )[:40]
        days = np.arange(40, dtype=np.float64) % 30
        categories = ["A", "B"] * 20
        ids = [f"i{i}" for i in range(40)]
        for target in (plain, filtered):
            target.add_many(ids, base, days, categories)
        query = np.array([1.0, 1.0, 0.0])
        for query_day in (0.0, 15.0, 45.0):
            assert_bitwise_results(
                [plain.search(query, query_day)],
                [filtered.search(query, query_day)],
            )
        assert_same_stats(plain, filtered)

    def test_single_row_shards(self):
        similarity = SimilarityConfig(alpha=0.5, k=5, diverse_categories=True)
        plain, filtered = pair(similarity, window_days=5.0)
        for index in range(6):
            vector = np.eye(6)[index] * 4.0
            for target in (plain, filtered):
                target.add(f"i{index}", vector, index * 30.0, f"cat{index % 2}")
        assert_bitwise_results(
            [plain.search(np.ones(6), 150.0)],
            [filtered.search(np.ones(6), 150.0)],
        )

    def test_tiny_norms_near_subnormal(self):
        """Scales around 2^-500: underflow guards must fail safe (keep rows)."""
        similarity = SimilarityConfig(alpha=0.3, k=3)
        plain, filtered = pair(similarity, window_days=50.0)
        rng = np.random.default_rng(31)
        vectors = rng.integers(-8, 9, size=(60, 4)).astype(np.float64) * 2.0 ** -500
        vectors[5] = 0.0  # an exactly-zero row for good measure
        days = rng.integers(0, 50, size=60).astype(np.float64)
        ids = [f"i{i}" for i in range(60)]
        categories = [f"cat{i % 4}" for i in range(60)]
        for target in (plain, filtered):
            target.add_many(ids, vectors, days, categories)
        queries = rng.integers(-8, 9, size=(4, 4)).astype(np.float64) * 2.0 ** -500
        query_days = rng.integers(0, 60, size=4).astype(np.float64)
        assert_bitwise_results(
            plain.search_many(queries, query_days),
            filtered.search_many(queries, query_days),
        )
        assert_same_stats(plain, filtered)


class TestQuantizedContinuousData:
    def test_selection_identical_scores_approx(self):
        """General float data: same neighbours, scores to 1e-9, same stats."""
        similarity = SimilarityConfig(alpha=0.3, k=5, diverse_categories=True)
        plain, filtered = pair(similarity, window_days=10.0)
        flat = FlatVectorIndex(similarity)
        rng = np.random.default_rng(37)
        count = 1500
        ids = [f"i{i}" for i in range(count)]
        vectors = rng.standard_normal((count, 12))
        days = rng.uniform(0.0, 240.0, size=count)
        categories = [f"cat{i % 17}" for i in range(count)]
        for target in (flat, plain, filtered):
            target.add_many(ids, vectors, days, categories)
        queries = rng.standard_normal((12, 12))
        query_days = rng.uniform(0.0, 260.0, size=12)
        reference = plain.search_many(queries, query_days)
        assert_same_selection(
            reference, filtered.search_many(queries, query_days)
        )
        assert_same_selection(reference, flat.search_many(queries, query_days))
        assert_same_stats(plain, filtered)
        assert plain.stats()["shards_pruned"] == filtered.stats()["shards_pruned"]

    def test_prefilter_composes_with_filters_and_backends(self):
        """Filters force the slow path; backends change transport only."""
        similarity = SimilarityConfig(alpha=0.3, k=4)
        plain, filtered = pair(similarity, window_days=15.0)
        process = ShardedVectorIndex(
            similarity,
            window_days=15.0,
            max_workers=2,
            scoring_backend="process",
            quantized_prefilter=True,
        )
        rng = np.random.default_rng(41)
        count = 500
        ids = [f"i{i}" for i in range(count)]
        vectors = rng.standard_normal((count, 8))
        days = rng.uniform(0.0, 120.0, size=count)
        categories = [f"cat{i % 9}" for i in range(count)]
        try:
            for target in (plain, filtered, process):
                target.add_many(ids, vectors, days, categories)
            queries = rng.standard_normal((5, 8))
            query_days = rng.uniform(0.0, 130.0, size=5)
            kwargs = dict(
                exclude_ids=[{f"i{row}"} for row in range(5)],
                history_before_day=110.0,
                categories={f"cat{i}" for i in range(6)},
            )
            reference = plain.search_many(queries, query_days, **kwargs)
            assert_bitwise_results(
                reference, filtered.search_many(queries, query_days, **kwargs)
            )
            assert_bitwise_results(
                reference, process.search_many(queries, query_days, **kwargs)
            )
            # Unfiltered: prefiltered thread and process modes stay mutually
            # bitwise (same code, same shapes — transport is invisible).
            assert_bitwise_results(
                filtered.search_many(queries, query_days),
                process.search_many(queries, query_days),
            )
        finally:
            process.close()
