"""The shared-memory / mmap arena layer under the sharded index.

Unit coverage for the layout planner, the int8 row quantizer and the
arena build/attach/views lifecycle for both backings (POSIX shm and
plain files), plus the satellite leak regression: a process-backend
index must leave ``/dev/shm`` exactly as it found it after ``close()``.
"""

from __future__ import annotations

import os
import pickle
import sys

import numpy as np
import pytest

from repro.vectordb import ShardedVectorIndex, SimilarityConfig
from repro.vectordb.shardmem import (
    ALIGNMENT,
    ArenaSpec,
    BlobSpec,
    QUANT_HALF_STEP,
    ShardArena,
    SharedBlob,
    attached_arena,
    plan_layout,
    quantize_rows,
    release_attachments,
    rss_anon_kb,
)

LINUX_ONLY = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="/dev/shm is Linux-specific"
)


def shm_entries():
    """Names of repro-owned segments currently in /dev/shm."""
    try:
        return sorted(
            name for name in os.listdir("/dev/shm") if name.startswith("repro-")
        )
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def sample_payloads(rng, shapes):
    payloads = []
    for key, rows, dim in shapes:
        matrix = rng.standard_normal((rows, dim))
        q8, qscale, ql1 = quantize_rows(matrix)
        payloads.append(
            (
                key,
                {
                    "matrix": matrix,
                    "days": rng.uniform(0.0, 100.0, size=rows),
                    "sq_norms": np.einsum("ij,ij->i", matrix, matrix),
                    "seqs": np.arange(rows, dtype=np.int64),
                    "codes": rng.integers(0, 5, size=rows).astype(np.int64),
                    "q8": q8,
                    "qscale": qscale,
                    "ql1": ql1,
                },
            )
        )
    return payloads


class TestLayout:
    def test_every_field_is_aligned(self):
        blocks, size = plan_layout([(0, 7, 13), (3, 1, 13), (9, 100, 13)])
        assert size % ALIGNMENT == 0
        for block in blocks:
            for _, offset in block.offsets:
                assert offset % ALIGNMENT == 0
        # Blocks are laid out in input order without overlap.
        flat = [offset for block in blocks for _, offset in block.offsets]
        assert flat == sorted(flat)

    def test_empty_layout_is_never_zero_sized(self):
        blocks, size = plan_layout([])
        assert blocks == ()
        assert size >= ALIGNMENT

    def test_spec_lookup_and_pickling(self):
        blocks, size = plan_layout([(4, 3, 2)])
        spec = ArenaSpec(kind="shm", name="x", size=size, blocks=blocks)
        assert spec.block(4).rows == 3
        with pytest.raises(KeyError):
            spec.block(5)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        with pytest.raises(KeyError):
            blocks[0].offset("nonexistent")


class TestQuantizeRows:
    def test_zero_rows_are_exact(self):
        q8, scales, ql1 = quantize_rows(np.zeros((3, 4)))
        assert np.all(q8 == 0)
        assert np.all(scales == 1.0)
        assert np.all(ql1 == 0.0)

    def test_reconstruction_error_within_half_step(self):
        rng = np.random.default_rng(11)
        matrix = rng.standard_normal((50, 16)) * 10.0 ** rng.integers(
            -6, 6, size=(50, 1)
        )
        q8, scales, ql1 = quantize_rows(matrix)
        assert q8.dtype == np.int8
        assert np.abs(q8).max() <= 127
        error = np.abs(matrix - q8.astype(np.float64) * scales[:, None])
        assert np.all(error <= QUANT_HALF_STEP * scales[:, None])
        np.testing.assert_allclose(
            ql1, np.abs(q8.astype(np.float64)).sum(axis=1)
        )

    def test_integer_grid_is_exact(self):
        """Integer vectors within range quantize with zero error."""
        matrix = np.array([[127.0, -127.0, 0.0], [1.0, -1.0, 1.0]])
        q8, scales, _ = quantize_rows(matrix)
        np.testing.assert_array_equal(q8.astype(np.float64) * scales[:, None], matrix)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_rows(np.zeros(3))


class TestArenaLifecycle:
    @pytest.mark.parametrize("kind", ["shm", "file"])
    def test_build_attach_views_roundtrip(self, kind, tmp_path):
        rng = np.random.default_rng(5)
        shapes = [(0, 6, 8), (2, 1, 8), (7, 40, 8)]
        payloads = sample_payloads(rng, shapes)
        path = str(tmp_path / "arena.bin") if kind == "file" else None
        arena = ShardArena.build(payloads, kind=kind, path=path)

        def check(reader):
            # Scoped so every numpy view dies before the reader closes —
            # live views would pin the export and delay segment teardown.
            for key, arrays in payloads:
                views = reader.views(key)
                for name, expected in arrays.items():
                    np.testing.assert_array_equal(views[name], expected)
                    assert not views[name].flags.writeable

        try:
            assert arena.nbytes == arena.spec.size
            reader = ShardArena.attach(arena.spec)
            try:
                check(reader)
            finally:
                reader.close()
        finally:
            arena.destroy()
        if kind == "file":
            # Destroying the handle never deletes the persisted artifact.
            assert os.path.exists(path)
        else:
            assert arena.spec.name not in shm_entries()

    def test_views_after_close_raise(self):
        rng = np.random.default_rng(6)
        arena = ShardArena.build(sample_payloads(rng, [(0, 2, 3)]))
        arena.destroy()
        with pytest.raises(ValueError):
            arena.views(0)

    def test_unknown_kind_rejected(self, tmp_path):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            ShardArena.build(sample_payloads(rng, [(0, 1, 2)]), kind="tmpfs")
        with pytest.raises(ValueError):
            ShardArena.build(sample_payloads(rng, [(0, 1, 2)]), kind="file")

    def test_attachment_cache_is_bounded(self, tmp_path):
        rng = np.random.default_rng(8)
        arenas = [
            ShardArena.build(
                sample_payloads(rng, [(0, 2, 3)]),
                kind="file",
                path=str(tmp_path / f"arena-{i}.bin"),
            )
            for i in range(4)
        ]
        try:
            release_attachments()
            cached = [attached_arena(arena.spec) for arena in arenas]
            # The two oldest attachments were evicted and closed.
            assert cached[0]._closed and cached[1]._closed  # noqa: SLF001
            assert not cached[2]._closed and not cached[3]._closed  # noqa: SLF001
            assert attached_arena(arenas[3].spec) is cached[3]
        finally:
            release_attachments()
            for arena in arenas:
                arena.destroy()


class TestSharedBlob:
    @LINUX_ONLY
    def test_roundtrip_and_destroy(self):
        before = shm_entries()
        payload = {"config": [1, 2, 3], "name": "hub"}
        blob = SharedBlob.create(payload)
        assert SharedBlob.read(blob.spec) == payload
        blob.destroy()
        blob.destroy()  # idempotent
        assert shm_entries() == before
        with pytest.raises(FileNotFoundError):
            SharedBlob.read(BlobSpec(name=blob.spec.name, length=blob.spec.length))


class TestLeakRegression:
    @LINUX_ONLY
    def test_process_index_leaves_dev_shm_clean(self):
        """Satellite: spawn workers, search, close — no shm entries remain."""
        before = shm_entries()
        similarity = SimilarityConfig(alpha=0.3, k=4)
        index = ShardedVectorIndex(
            similarity, window_days=15.0, max_workers=2, scoring_backend="process"
        )
        rng = np.random.default_rng(13)
        index.add_many(
            [f"i{i}" for i in range(400)],
            rng.standard_normal((400, 8)),
            rng.uniform(0.0, 120.0, size=400),
            [f"cat{i % 7}" for i in range(400)],
        )
        index.search_many(
            rng.standard_normal((6, 8)), rng.uniform(0.0, 130.0, size=6)
        )
        assert index.arena_bytes() > 0
        # Ingest between searches remaps the arena; the stale one must go.
        index.add("late", rng.standard_normal(8), 60.0, "catX")
        index.search_many(
            rng.standard_normal((3, 8)), rng.uniform(0.0, 130.0, size=3)
        )
        index.close()
        assert shm_entries() == before

    @LINUX_ONLY
    def test_del_cleans_up_without_explicit_close(self):
        before = shm_entries()
        similarity = SimilarityConfig(alpha=0.3, k=3)
        index = ShardedVectorIndex(
            similarity, window_days=15.0, max_workers=2, scoring_backend="process"
        )
        rng = np.random.default_rng(14)
        index.add_many(
            [f"i{i}" for i in range(100)],
            rng.standard_normal((100, 6)),
            rng.uniform(0.0, 60.0, size=100),
            ["A", "B"] * 50,
        )
        index.search_many(rng.standard_normal((2, 6)), [30.0, 50.0])
        del index
        assert shm_entries() == before


class TestRssProbe:
    @LINUX_ONLY
    def test_rss_anon_is_positive_on_linux(self):
        value = rss_anon_kb()
        assert value is not None and value > 0
