"""Tests for the similarity formula, vector store and KNN search."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vectordb import (
    NearestNeighborSearch,
    SimilarityConfig,
    VectorStore,
    euclidean_distance,
    similarity,
    temporal_decay,
)


class TestSimilarityFormula:
    def test_identical_vectors_same_day_is_one(self):
        a = np.array([1.0, 2.0])
        assert similarity(a, a, 5.0, 5.0, alpha=0.3) == pytest.approx(1.0)

    def test_distance_reduces_similarity(self):
        a, b = np.array([0.0, 0.0]), np.array([3.0, 4.0])
        assert similarity(a, b, 0.0, 0.0) == pytest.approx(1.0 / 6.0)

    def test_temporal_gap_reduces_similarity(self):
        a = np.array([1.0])
        near = similarity(a, a, 0.0, 1.0, alpha=0.3)
        far = similarity(a, a, 0.0, 30.0, alpha=0.3)
        assert near > far

    def test_alpha_zero_disables_decay(self):
        a = np.array([1.0])
        assert similarity(a, a, 0.0, 100.0, alpha=0.0) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.array([1.0]), np.array([1.0, 2.0]))

    def test_negative_alpha_raises(self):
        with pytest.raises(ValueError):
            temporal_decay(0.0, 1.0, alpha=-0.1)
        with pytest.raises(ValueError):
            SimilarityConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            SimilarityConfig(k=0)

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=8),
        st.lists(st.floats(-100, 100), min_size=2, max_size=8),
        st.floats(0, 300),
        st.floats(0, 300),
        st.floats(0, 1),
    )
    @settings(max_examples=60)
    def test_similarity_bounded_and_symmetric(self, a, b, ta, tb, alpha):
        size = min(len(a), len(b))
        va, vb = np.array(a[:size]), np.array(b[:size])
        score = similarity(va, vb, ta, tb, alpha=alpha)
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx(similarity(vb, va, tb, ta, alpha=alpha))

    @given(st.floats(0, 50), st.floats(0, 50))
    def test_temporal_decay_monotone_in_gap(self, t1, t2):
        near = temporal_decay(0.0, min(t1, t2))
        far = temporal_decay(0.0, max(t1, t2))
        assert near >= far


class TestVectorStore:
    def test_add_and_get(self):
        store = VectorStore()
        store.add("i1", np.array([1.0, 0.0]), created_day=1.0, category="A")
        assert len(store) == 1
        assert "i1" in store
        assert store.get("i1").category == "A"
        assert store.get("missing") is None

    def test_duplicate_id_rejected(self):
        store = VectorStore()
        store.add("i1", np.array([1.0]), 1.0, "A")
        with pytest.raises(ValueError):
            store.add("i1", np.array([2.0]), 2.0, "B")

    def test_dimension_mismatch_rejected(self):
        store = VectorStore()
        store.add("i1", np.array([1.0, 2.0]), 1.0, "A")
        with pytest.raises(ValueError):
            store.add("i2", np.array([1.0]), 1.0, "B")

    def test_matrix_and_days_alignment(self):
        store = VectorStore()
        store.add("i1", np.array([1.0, 0.0]), 1.0, "A")
        store.add("i2", np.array([0.0, 1.0]), 2.0, "B")
        assert store.matrix().shape == (2, 2)
        assert list(store.created_days()) == [1.0, 2.0]
        assert store.categories() == ["A", "B"]


def build_store():
    store = VectorStore()
    store.add("a1", np.array([1.0, 0.0, 0.0]), created_day=10.0, category="A", text="a one")
    store.add("a2", np.array([0.9, 0.1, 0.0]), created_day=11.0, category="A", text="a two")
    store.add("b1", np.array([0.0, 1.0, 0.0]), created_day=11.5, category="B", text="b one")
    store.add("c1", np.array([0.0, 0.0, 1.0]), created_day=2.0, category="C", text="c one")
    return store


class TestKnn:
    def test_search_orders_by_similarity(self):
        search = NearestNeighborSearch(build_store(), SimilarityConfig(alpha=0.0, k=4, diverse_categories=False))
        neighbors = search.search(np.array([1.0, 0.0, 0.0]), query_day=12.0)
        assert neighbors[0].incident_id == "a1"
        assert [n.incident_id for n in neighbors][:2] == ["a1", "a2"]

    def test_diverse_categories_dedupes(self):
        search = NearestNeighborSearch(build_store(), SimilarityConfig(alpha=0.0, k=3, diverse_categories=True))
        neighbors = search.search(np.array([1.0, 0.0, 0.0]), query_day=12.0)
        categories = [n.category for n in neighbors]
        assert len(categories) == len(set(categories)) == 3

    def test_fill_when_fewer_categories_than_k(self):
        search = NearestNeighborSearch(build_store(), SimilarityConfig(alpha=0.0, k=4, diverse_categories=True))
        neighbors = search.search(np.array([1.0, 0.0, 0.0]), query_day=12.0)
        assert len(neighbors) == 4  # 3 distinct categories + 1 filler

    def test_temporal_decay_prefers_recent(self):
        search = NearestNeighborSearch(build_store(), SimilarityConfig(alpha=0.9, k=1, diverse_categories=False))
        neighbors = search.search(np.array([0.0, 0.0, 1.0]), query_day=12.0)
        # c1 is the exact match but is 10 days old; with strong decay the
        # recent b1 wins.
        assert neighbors[0].incident_id == "b1"

    def test_exclude_ids_and_history_cutoff(self):
        search = NearestNeighborSearch(build_store(), SimilarityConfig(alpha=0.0, k=4, diverse_categories=False))
        neighbors = search.search(
            np.array([1.0, 0.0, 0.0]), query_day=12.0, exclude_ids={"a1"}, history_before_day=11.0
        )
        ids = [n.incident_id for n in neighbors]
        assert "a1" not in ids
        assert "b1" not in ids  # created at 11.5 >= cutoff

    def test_query_dimension_mismatch(self):
        search = NearestNeighborSearch(build_store())
        with pytest.raises(ValueError):
            search.search(np.array([1.0]), query_day=1.0)

    def test_empty_store(self):
        search = NearestNeighborSearch(VectorStore())
        assert search.search(np.array([1.0]), query_day=1.0) == []

    def test_scores_match_formula(self):
        store = build_store()
        search = NearestNeighborSearch(store, SimilarityConfig(alpha=0.3, k=4))
        query = np.array([0.5, 0.5, 0.0])
        scores = search.score_all(query, query_day=12.0)
        for index, entry in enumerate(store.entries()):
            expected = similarity(query, entry.vector, 12.0, entry.created_day, alpha=0.3)
            assert scores[index] == pytest.approx(expected)
